package main

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"semimatch/internal/batch"
	"semimatch/internal/cluster"
	"semimatch/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
	cacheEntries := flag.Int("cache", service.DefaultCacheEntries, "result-cache capacity in entries (negative disables)")
	cacheDir := flag.String("cache-dir", "", "directory for the durable cache tier: verified results persist across restarts (empty disables)")
	queueDepth := flag.Int("queue", service.DefaultQueueDepth, "max solves in flight before requests get 429")
	workers := flag.Int("workers", 0, "max concurrently running solves (0 = GOMAXPROCS)")
	deadline := flag.Duration("deadline", 10*time.Second, "default per-request deadline when none is given (0 = none)")
	maxDeadline := flag.Duration("max-deadline", time.Minute, "cap on the per-request ?deadline= override (0 = no cap)")
	maxInflight := flag.Int("http-inflight", 64, "max concurrent /solve requests, parsing included (0 = unlimited)")
	maxBody := flag.Int64("max-body", 0, "max /solve request body in bytes (0 = 16MiB; worst-case buffered memory is this times -http-inflight)")
	doRefine := flag.Bool("refine", false, "post-process auto-policy schedules with local search")
	logLevel := flag.String("log-level", "info", "structured access-log level: debug, info, warn, error, or off")
	ledgerPath := flag.String("ledger", "", "append one JSONL solve-ledger record per fresh solve to this file (empty disables)")
	tracePath := flag.String("trace", "", "write one NDJSON request-trace span tree per request to this file (\"-\" = stderr, empty disables)")
	doPprof := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	maxSessions := flag.Int("sessions", 64, "max concurrently open dynamic sessions (0 disables the /session endpoints)")
	sessionIdle := flag.Duration("session-idle", 5*time.Minute, "evict sessions with no events and no open stream for this long (0 = never)")
	peersList := flag.String("peers", "", "comma-separated base URLs of the fleet's replicas (self may be included); enables fingerprint-sharded routing and cache peering, requires -self")
	selfURL := flag.String("self", "", "this replica's own base URL as peers reach it (e.g. http://10.0.0.3:8080); required with -peers")
	doForward := flag.Bool("forward", true, "with -peers: forward solve requests whose fingerprint another replica owns (false = always answer locally, relying on cache peering alone)")
	peerTimeout := flag.Duration("peer-timeout", service.DefaultPeerTimeout, "cap on one peer cache fetch (further tightened to half the request's remaining deadline)")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: semiserve [-addr :8080] [-cache n] [-queue n] [-workers n] [-deadline d]")
		os.Exit(2)
	}

	if *cacheDir != "" {
		// Fail fast on an unusable directory: the service itself degrades
		// gracefully, but a server explicitly asked to persist should not
		// come up silently unable to.
		if err := os.MkdirAll(*cacheDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "semiserve: -cache-dir: %v\n", err)
			os.Exit(1)
		}
	}

	var logger *slog.Logger
	if *logLevel != "off" {
		var level slog.Level
		if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
			fmt.Fprintf(os.Stderr, "semiserve: -log-level: %v\n", err)
			os.Exit(2)
		}
		logger = slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	}

	var traceW io.Writer
	if *tracePath == "-" {
		traceW = os.Stderr
	} else if *tracePath != "" {
		f, err := os.OpenFile(*tracePath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintf(os.Stderr, "semiserve: -trace: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		traceW = f
	}

	// The cluster layer: one ring and one bounded client shared by the
	// service's peer-cache tier and the HTTP layer's request forwarding.
	var ring *cluster.Ring
	var peerClient *cluster.Client
	var peerCache service.PeerCache
	if *peersList != "" {
		if *selfURL == "" {
			fmt.Fprintln(os.Stderr, "semiserve: -peers requires -self (this replica's own base URL)")
			os.Exit(2)
		}
		var err error
		ring, err = cluster.NewRing(*selfURL, strings.Split(*peersList, ","))
		if err != nil {
			fmt.Fprintf(os.Stderr, "semiserve: -peers: %v\n", err)
			os.Exit(2)
		}
		peerClient = cluster.NewClient(cluster.ClientOptions{FetchTimeout: *peerTimeout})
		peerCache = &peerAdapter{ring: ring, client: peerClient}
	}

	svc := service.New(service.Options{
		CacheEntries:    *cacheEntries,
		CacheDir:        *cacheDir,
		QueueDepth:      *queueDepth,
		Workers:         *workers,
		DefaultDeadline: *deadline,
		Batch:           batch.Options{Refine: *doRefine},
		LedgerPath:      *ledgerPath,
		TraceWriter:     traceW,
		Peers:           peerCache,
		PeerTimeout:     *peerTimeout,
	})
	defer svc.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "semiserve: %v\n", err)
		os.Exit(1)
	}
	// The actual address is printed (not just the flag value) so scripts
	// can start on port 0 and scrape the port — the CI smoke job does.
	fmt.Printf("semiserve: listening on %s\n", ln.Addr())

	// WriteTimeout must outlive the longest admissible solve (it covers
	// the handler, not just the response write); the other timeouts shed
	// slow-client connections that would otherwise pin goroutines and
	// partially-read bodies forever.
	writeTimeout := 5 * time.Minute
	if *maxDeadline > 0 {
		writeTimeout = *maxDeadline + 30*time.Second
	}
	srv := &http.Server{
		Handler: newServer(svc, serverConfig{
			maxDeadline: *maxDeadline,
			maxInflight: *maxInflight,
			maxBody:     *maxBody,
			logger:      logger,
			pprof:       *doPprof,
			ring:        ring,
			client:      peerClient,
			forward:     *doForward,
			sessions:    *maxSessions,
			sessionIdle: *sessionIdle,
			trace:       traceW != nil,
		}),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      writeTimeout,
		IdleTimeout:       2 * time.Minute,
	}
	if err := srv.Serve(ln); err != nil {
		fmt.Fprintf(os.Stderr, "semiserve: %v\n", err)
		os.Exit(1)
	}
}
