package main

import (
	"context"
	"io"
	"net/http"
	"strings"
	"testing"

	"semimatch/internal/bench"
)

// TestSessionLoadAgainstServer drives the real semiload -session engine
// against a real server: the BENCH_<n>.json sessionload recording in
// miniature. The engine opens its own session with the cold comparison
// enabled, so every exact re-solve runs twice and the warm/cold node
// totals it reports must show warm starts never searching more.
func TestSessionLoadAgainstServer(t *testing.T) {
	if testing.Short() {
		t.Skip("session load generation in -short mode")
	}
	ts, _ := startSessionServer(t, serverConfig{sessions: 4})

	rep, err := bench.RunSessionLoad(context.Background(), bench.SessionLoadOptions{
		Target: ts.URL,
		Events: 60,
		Procs:  3,
		Lambda: 1,
		Seed:   7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != bench.SessionLoadSchema {
		t.Fatalf("schema = %q", rep.Schema)
	}
	if rep.Events != 60 {
		t.Fatalf("events = %d, want 60", rep.Events)
	}
	if rep.EventP50Ms <= 0 || rep.EventP99Ms < rep.EventP50Ms {
		t.Fatalf("bad latency percentiles: p50=%v p99=%v", rep.EventP50Ms, rep.EventP99Ms)
	}
	if rep.FinalTasks <= 0 || rep.FinalMakespan <= 0 {
		t.Fatalf("final state: tasks=%d makespan=%d", rep.FinalTasks, rep.FinalMakespan)
	}
	if rep.ColdNodes == 0 {
		t.Fatal("cold comparison never ran — compare_cold not honored")
	}
	if rep.WarmNodes > rep.ColdNodes {
		t.Fatalf("warm starts searched more than cold: %d > %d", rep.WarmNodes, rep.ColdNodes)
	}
	if rep.WarmColdRatio <= 0 || rep.WarmColdRatio > 1 {
		t.Fatalf("warm/cold ratio = %v", rep.WarmColdRatio)
	}

	// The engine deletes its session on the way out: one opened, none
	// still live in the service counters.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"semimatch_sessions_total 1",
		"semimatch_sessions_open 0",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Fatalf("metrics missing %q:\n%s", want, metrics)
		}
	}
}
