package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"semimatch/internal/cluster"
	"semimatch/internal/encode"
	"semimatch/internal/service"
)

// replica is one fleet member under test: its HTTP server and a direct
// handle on the service for stats assertions.
type replica struct {
	ts  *httptest.Server
	svc *service.Service
	url string
}

// startFleet brings up n peered semiserve replicas on real loopback
// listeners. The listeners are created first so every replica's base URL
// is known before any ring is built — the same order of operations a
// deployment with a static fleet config has.
func startFleet(t *testing.T, n int, forward bool) []*replica {
	t.Helper()
	listeners := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	reps := make([]*replica, n)
	for i := range reps {
		ring, err := cluster.NewRing(urls[i], urls)
		if err != nil {
			t.Fatal(err)
		}
		client := cluster.NewClient(cluster.ClientOptions{})
		svc := service.New(service.Options{Peers: &peerAdapter{ring: ring, client: client}})
		ts := httptest.NewUnstartedServer(newServer(svc, serverConfig{
			ring: ring, client: client, forward: forward,
		}))
		ts.Listener.Close()
		ts.Listener = listeners[i]
		ts.Start()
		t.Cleanup(ts.Close)
		reps[i] = &replica{ts: ts, svc: svc, url: urls[i]}
	}
	return reps
}

// ownerOf splits a fleet into the replica owning the given instance text
// and the others, using the same ring the replicas route by.
func ownerOf(t *testing.T, reps []*replica, instanceText string) (owner *replica, others []*replica) {
	t.Helper()
	h, err := encode.ReadHypergraph(strings.NewReader(instanceText))
	if err != nil {
		t.Fatal(err)
	}
	fp, err := encode.FingerprintHypergraph(h)
	if err != nil {
		t.Fatal(err)
	}
	urls := make([]string, len(reps))
	for i, rep := range reps {
		urls[i] = rep.url
	}
	ring, err := cluster.NewRing(urls[0], urls)
	if err != nil {
		t.Fatal(err)
	}
	ownerURL := ring.Owner(fp)
	for _, rep := range reps {
		if rep.url == ownerURL {
			owner = rep
		} else {
			others = append(others, rep)
		}
	}
	if owner == nil {
		t.Fatalf("no replica owns %s", ownerURL)
	}
	return owner, others
}

// scrapeMetric returns the value line for one metric family from a
// replica's /metrics.
func scrapeMetric(t *testing.T, base, family string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, family+" ") {
			return line
		}
	}
	return ""
}

// TestFleetCrossReplicaVerifiedHit is the acceptance criterion: an entry
// solved on replica A answers an isomorphic request on replica B as a
// verified "peer" hit — B re-verifies the certificate, runs no solve of
// its own, and admits the entry to its own cache. Forwarding is off, so
// the peer-cache tier (not request routing) must carry the entry across.
func TestFleetCrossReplicaVerifiedHit(t *testing.T) {
	reps := startFleet(t, 3, false)
	owner, others := ownerOf(t, reps, tinyHyper)

	code, ra, raw := postSolve(t, owner.ts.URL+"/solve", tinyHyper)
	if code != http.StatusOK {
		t.Fatalf("owner solve: %d %s", code, raw)
	}
	if ra.CacheTier != "none" || ra.Cached {
		t.Fatalf("owner's first solve cache_tier = %q", ra.CacheTier)
	}

	b := others[0]
	code, rb, raw := postSolve(t, b.ts.URL+"/solve", tinyHyperIso)
	if code != http.StatusOK {
		t.Fatalf("peer solve: %d %s", code, raw)
	}
	if rb.CacheTier != "peer" || !rb.Cached {
		t.Fatalf("cross-replica cache_tier = %q, want peer", rb.CacheTier)
	}
	if rb.Makespan != ra.Makespan || rb.Fingerprint != ra.Fingerprint {
		t.Fatalf("peer hit disagrees with the origin solve: %+v vs %+v", rb, ra)
	}

	stB := b.svc.Stats()
	if stB.PeerHits != 1 || stB.Solves != 0 {
		t.Fatalf("B peer_hits=%d solves=%d, want 1/0", stB.PeerHits, stB.Solves)
	}
	if stB.VerifyFailures != 0 || stB.PeerVerifyFailures != 0 {
		t.Fatalf("verify failures on a genuine fleet entry: %+v", stB)
	}
	if stA := owner.svc.Stats(); stA.PeerServed != 1 {
		t.Fatalf("A peer_served = %d, want 1", stA.PeerServed)
	}
	if line := scrapeMetric(t, b.ts.URL, "semimatch_peer_hits_total"); line != "semimatch_peer_hits_total 1" {
		t.Fatalf("B /metrics peer hits line = %q", line)
	}

	// The adopted entry is B's own now: a repeat request hits B's memory.
	_, rb2, _ := postSolve(t, b.ts.URL+"/solve", tinyHyperIso)
	if rb2.CacheTier != "memory" {
		t.Fatalf("repeat on B cache_tier = %q, want memory", rb2.CacheTier)
	}
}

// TestFleetForwarding: with forwarding on, a request posted to a
// non-owner is relayed to the owning replica (single hop, named in the
// response header) and the owner does the solving; the same instance
// posted again becomes the owner's memory hit even though the client
// never talked to the owner directly.
func TestFleetForwarding(t *testing.T) {
	reps := startFleet(t, 3, true)
	owner, others := ownerOf(t, reps, tinyHyper)
	b := others[0]

	resp, err := http.Post(b.ts.URL+"/solve", "text/plain", strings.NewReader(tinyHyper))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forwarded solve: %d %s", resp.StatusCode, buf.String())
	}
	if got := resp.Header.Get("X-Semimatch-Forwarded-To"); got != owner.url {
		t.Fatalf("forwarded to %q, owner is %q", got, owner.url)
	}
	if stA, stB := owner.svc.Stats(), b.svc.Stats(); stA.Solves != 1 || stB.Solves != 0 {
		t.Fatalf("owner solves=%d, forwarder solves=%d, want 1/0", stA.Solves, stB.Solves)
	}
	if line := scrapeMetric(t, b.ts.URL, "semimatch_peer_forwards_total"); line != "semimatch_peer_forwards_total 1" {
		t.Fatalf("forwarder /metrics = %q", line)
	}

	// Second post through the same non-owner: the owner answers from its
	// memory cache, proving isomorphic traffic converges on one replica.
	_, r2, _ := postSolve(t, b.ts.URL+"/solve", tinyHyperIso)
	if r2.CacheTier != "memory" {
		t.Fatalf("second forwarded request cache_tier = %q, want memory", r2.CacheTier)
	}

	// A request that already hopped once must be answered locally — but
	// the peer-cache tier still finds the owner's entry, so the hop guard
	// costs one cache fetch, not a duplicated solve.
	req, err := http.NewRequest(http.MethodPost, b.ts.URL+"/solve", strings.NewReader(tinyHyper))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(cluster.HopHeader, "1")
	hresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var hbuf bytes.Buffer
	hbuf.ReadFrom(hresp.Body)
	hresp.Body.Close()
	if hresp.Header.Get("X-Semimatch-Forwarded-To") != "" {
		t.Fatal("hop-guarded request was forwarded again")
	}
	if !strings.Contains(hbuf.String(), `"cache_tier":"peer"`) {
		t.Fatalf("hop-guarded request body = %s, want a peer-tier answer", hbuf.String())
	}
	if st := b.svc.Stats(); st.Solves != 0 {
		t.Fatalf("hop-guarded request re-solved on the non-owner (solves=%d)", st.Solves)
	}
}

// TestFleetColdPeerMiss: when the owning replica has nothing cached, the
// non-owner's peer fetch is a clean miss and the request degrades to a
// local fresh solve — peering can never lose a request.
func TestFleetColdPeerMiss(t *testing.T) {
	reps := startFleet(t, 3, false)
	_, others := ownerOf(t, reps, tinyHyper)
	b := others[0]

	code, r, raw := postSolve(t, b.ts.URL+"/solve", tinyHyper)
	if code != http.StatusOK {
		t.Fatalf("solve: %d %s", code, raw)
	}
	if r.CacheTier != "none" || r.Cached {
		t.Fatalf("cold fleet cache_tier = %q, want none", r.CacheTier)
	}
	if st := b.svc.Stats(); st.PeerMisses != 1 || st.Solves != 1 {
		t.Fatalf("peer_misses=%d solves=%d, want 1/1", st.PeerMisses, st.Solves)
	}
}

// TestPeerCacheEndpoint: the wire endpoint itself — escaped keys round-
// trip, misses are 404, non-GET is rejected.
func TestPeerCacheEndpoint(t *testing.T) {
	ts, svc := startServer(t, service.Options{})
	_, r, _ := postSolve(t, ts.URL+"/solve", tinyHyper)
	key := r.Fingerprint + "|auto|inf"

	resp, err := http.Get(ts.URL + cluster.CacheKeyPath(key))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET entry: %d", resp.StatusCode)
	}
	var e service.PeerEntry
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if e.Key != key || e.Makespan != r.Makespan || e.Certificate == nil {
		t.Fatalf("served entry %+v", e)
	}
	if svc.Stats().PeerServed != 1 {
		t.Fatal("peer_served not counted")
	}

	if resp, err := http.Get(ts.URL + cluster.CacheKeyPath("nothing|auto|inf")); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("miss status = %d, want 404", resp.StatusCode)
		}
	}
	if resp, err := http.Post(ts.URL+cluster.CacheKeyPath(key), "text/plain", nil); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("POST status = %d, want 405", resp.StatusCode)
		}
	}
}
