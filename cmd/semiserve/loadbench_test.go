package main

import (
	"context"
	"testing"
	"time"

	"semimatch/internal/bench"
)

// TestLoadbenchAgainstFleet drives the real load generator against a
// real two-replica fleet (cache peering only, no forwarding) for a
// short window: the BENCH_<n>.json loadbench recording in miniature.
// With repeats and isomorphs landing on both replicas, the entry each
// hot instance's owner solved must cross to the other replica as
// verified peer hits — the fleet-wide counter movement the recorded
// snapshot asserts.
func TestLoadbenchAgainstFleet(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet load generation in -short mode")
	}
	reps := startFleet(t, 2, false)
	targets := []string{reps[0].url, reps[1].url}

	rep, err := bench.RunLoad(context.Background(), bench.LoadOptions{
		Targets:      targets,
		Duration:     700 * time.Millisecond,
		Concurrency:  4,
		Seed:         11,
		HotInstances: 4,
		Mix:          bench.LoadMix{RepeatPct: 70, IsoPct: 30},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 || rep.Errors != 0 {
		t.Fatalf("requests=%d errors=%d", rep.Requests, rep.Errors)
	}
	// Every measured request repeats a warm instance, so nothing should
	// solve fresh during the window: each lands as a memory hit on one
	// replica or a (then-cached) peer hit on the other.
	if rep.Tiers["none"] != 0 {
		t.Fatalf("warm-only mix produced %d fresh solves: %v", rep.Tiers["none"], rep.Tiers)
	}
	if rep.CacheHitRate != 1 {
		t.Fatalf("cache hit rate = %v, want 1 (%v)", rep.CacheHitRate, rep.Tiers)
	}

	peerHits, peerServed := 0.0, 0.0
	for _, tm := range rep.TargetMetrics {
		if tm.ScrapeError != "" {
			t.Fatalf("%s scrape: %s", tm.URL, tm.ScrapeError)
		}
		peerHits += tm.Deltas["semimatch_peer_hits_total"]
		peerServed += tm.Deltas["semimatch_peer_served_total"]
	}
	if peerHits == 0 || peerServed == 0 {
		t.Fatalf("no cross-replica traffic: peer_hits=%v peer_served=%v\n%s",
			peerHits, peerServed, bench.FormatLoadSummary(rep))
	}
	if rep.Tiers["peer"] == 0 {
		t.Fatalf("no peer-tier responses observed: %v", rep.Tiers)
	}
}
