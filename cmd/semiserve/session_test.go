package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"semimatch/internal/service"
	"semimatch/internal/session"
)

func startSessionServer(t *testing.T, cfg serverConfig) (*httptest.Server, *service.Service) {
	t.Helper()
	svc := service.New(service.Options{})
	ts := httptest.NewServer(newServer(svc, cfg))
	t.Cleanup(ts.Close)
	return ts, svc
}

// createSession opens a session and returns its id.
func createSession(t *testing.T, base string, hdr session.ScriptHeader) string {
	t.Helper()
	body, _ := json.Marshal(hdr)
	resp, err := http.Post(base+"/session", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /session: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST /session: status %d: %s", resp.StatusCode, b)
	}
	var created sessionCreated
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatalf("decoding create response: %v", err)
	}
	if created.ID == "" {
		t.Fatal("created session without an id")
	}
	return created.ID
}

// postEvents applies a batch of events and returns the per-event reports.
func postEvents(t *testing.T, base, id string, events []session.Event) []*session.SessionReport {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, ev := range events {
		enc.Encode(ev)
	}
	resp, err := http.Post(base+"/session/"+id+"/events", "application/x-ndjson", &buf)
	if err != nil {
		t.Fatalf("POST events: %v", err)
	}
	defer resp.Body.Close()
	var er eventsResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatalf("decoding events response: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST events: status %d: %s", resp.StatusCode, er.Error)
	}
	if len(er.Reports) != len(events) {
		t.Fatalf("posted %d events, got %d reports", len(events), len(er.Reports))
	}
	return er.Reports
}

// getState fetches the session snapshot.
func getState(t *testing.T, base, id string) session.State {
	t.Helper()
	resp, err := http.Get(base + "/session/" + id)
	if err != nil {
		t.Fatalf("GET session: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET session: status %d", resp.StatusCode)
	}
	var st session.State
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decoding snapshot: %v", err)
	}
	return st
}

// checkSnapshot asserts the snapshot is a feasible schedule: loads are
// exactly the placed tasks' contributions and the makespan is their max.
func checkSnapshot(t *testing.T, st session.State, procs int) {
	t.Helper()
	loads := make([]int64, procs)
	for _, task := range st.Tasks {
		for _, p := range task.Procs {
			if p < 0 || int(p) >= procs {
				t.Fatalf("task %q placed on processor %d of %d", task.ID, p, procs)
			}
			loads[p] += task.Weight
		}
	}
	var peak int64
	for p, l := range loads {
		if l != st.Loads[p] {
			t.Fatalf("processor %d: reported load %d, recomputed %d", p, st.Loads[p], l)
		}
		if l > peak {
			peak = l
		}
	}
	if peak != st.Makespan {
		t.Fatalf("reported makespan %d, recomputed %d", st.Makespan, peak)
	}
}

// ssePush is one parsed server-sent event.
type ssePush struct {
	event string
	data  []byte
}

// streamSSE opens the session's event stream and forwards parsed events
// until the stream ends; it closes out at EOF.
func streamSSE(t *testing.T, base, id string, out chan<- ssePush) (started <-chan struct{}) {
	t.Helper()
	ready := make(chan struct{})
	go func() {
		defer close(out)
		resp, err := http.Get(base + "/session/" + id + "/events")
		if err != nil {
			t.Errorf("GET events stream: %v", err)
			close(ready)
			return
		}
		defer resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
			t.Errorf("stream content type %q", ct)
		}
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
		var cur ssePush
		first := true
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "event: "):
				cur.event = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				cur.data = []byte(strings.TrimPrefix(line, "data: "))
			case line == "" && cur.event != "":
				if first {
					close(ready)
					first = false
				}
				out <- cur
				cur = ssePush{}
			}
		}
	}()
	return ready
}

// TestSessionEndToEnd is the ISSUE's integration criterion: a 200-event
// session against the HTTP surface streams monotone incumbents over SSE,
// intermediate schedules are feasible, warm-started re-solves explore
// strictly fewer total nodes than cold re-solves of the same instances,
// and λ > 0 migrates less than λ = 0.
func TestSessionEndToEnd(t *testing.T) {
	ts, svc := startSessionServer(t, serverConfig{sessions: 8, sessionIdle: time.Minute})
	const procs = 3
	id := createSession(t, ts.URL, session.ScriptHeader{Procs: procs, CompareCold: true})

	pushes := make(chan ssePush, 4096)
	<-streamSSE(t, ts.URL, id, pushes)

	events := session.GenerateScript(session.ScriptOptions{
		Seed: 11, Events: 200, Procs: procs, MaxWeight: 20,
	})
	var reports []*session.SessionReport
	for i := 0; i < len(events); i += 25 {
		end := min(i+25, len(events))
		reports = append(reports, postEvents(t, ts.URL, id, events[i:end])...)
		checkSnapshot(t, getState(t, ts.URL, id), procs)
	}

	if len(reports) != len(events) {
		t.Fatalf("%d reports for %d events", len(reports), len(events))
	}
	var warmTotal, coldTotal int64
	for i, rep := range reports {
		if rep.Seq != int64(i+1) {
			t.Fatalf("report %d has seq %d", i, rep.Seq)
		}
		if rep.Makespan > rep.PatchedMakespan {
			t.Fatalf("seq %d: adopted makespan %d above the patch's %d", rep.Seq, rep.Makespan, rep.PatchedMakespan)
		}
		if rep.SolveStatus != "skipped" && rep.LowerBound > rep.Makespan {
			t.Fatalf("seq %d: lower bound %d above makespan %d", rep.Seq, rep.LowerBound, rep.Makespan)
		}
		warmTotal += rep.Nodes
		coldTotal += rep.ColdNodes
	}
	if warmTotal >= coldTotal {
		t.Fatalf("warm re-solves explored %d nodes, cold %d: warm starts saved nothing", warmTotal, coldTotal)
	}

	// Tear the session down; the stream must end with a "closed" event.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/session/"+id, nil)
	if resp, err := http.DefaultClient.Do(req); err != nil || resp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE session: %v (status %v)", err, resp.Status)
	}

	// Drain the stream: an initial state event, per-seq monotone
	// incumbents, one report per event, then closed.
	sawState, sawClosed := false, false
	nReports := 0
	lastBySeq := make(map[int64]int64)
	deadline := time.After(30 * time.Second)
	for {
		var p ssePush
		var ok bool
		select {
		case p, ok = <-pushes:
		case <-deadline:
			t.Fatal("stream did not close after session delete")
		}
		if !ok {
			break
		}
		switch p.event {
		case "state":
			sawState = true
		case "closed":
			sawClosed = true
		case "report":
			nReports++
		case "incumbent":
			var inc incumbentWire
			if err := json.Unmarshal(p.data, &inc); err != nil {
				t.Fatalf("bad incumbent payload %s: %v", p.data, err)
			}
			if last, seen := lastBySeq[inc.Seq]; seen && inc.Makespan > last {
				t.Fatalf("seq %d: incumbent regressed %d -> %d", inc.Seq, last, inc.Makespan)
			}
			lastBySeq[inc.Seq] = inc.Makespan
		default:
			t.Fatalf("unknown SSE event %q", p.event)
		}
	}
	if !sawState || !sawClosed {
		t.Fatalf("stream lifecycle incomplete: state=%v closed=%v", sawState, sawClosed)
	}
	if len(lastBySeq) == 0 {
		t.Fatal("no incumbents streamed")
	}
	if nReports != len(events) {
		t.Fatalf("streamed %d reports for %d events", nReports, len(events))
	}

	// λ > 0 must migrate less than λ = 0 over the same script.
	migrations := func(lambda float64) int {
		id := createSession(t, ts.URL, session.ScriptHeader{Procs: procs, Lambda: lambda})
		migs := 0
		for _, rep := range postEvents(t, ts.URL, id, events) {
			migs += rep.Migrations
		}
		return migs
	}
	migsFree := migrations(0)
	migsPenalized := migrations(1000)
	if migsFree == 0 {
		t.Fatal("λ=0 session never migrated: the script exercises nothing")
	}
	if migsPenalized >= migsFree {
		t.Fatalf("λ=1000 migrated %d tasks, λ=0 migrated %d", migsPenalized, migsFree)
	}

	st := getStats(t, ts.URL)
	if st.Requests != 0 {
		t.Fatalf("session traffic counted as solve requests: %d", st.Requests)
	}
	_ = svc
}

// TestSessionMetricsAndLifecycle checks the session endpoints' error
// paths and the semimatch_session_* metric families.
func TestSessionMetricsAndLifecycle(t *testing.T) {
	ts, _ := startSessionServer(t, serverConfig{sessions: 1, sessionIdle: time.Minute})

	// Bad config.
	resp, err := http.Post(ts.URL+"/session", "application/json", strings.NewReader(`{"procs":0}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("procs=0 create: status %d", resp.StatusCode)
	}

	id := createSession(t, ts.URL, session.ScriptHeader{Procs: 2})

	// Capacity: the second session must shed with 429.
	body, _ := json.Marshal(session.ScriptHeader{Procs: 2})
	resp, err = http.Post(ts.URL+"/session", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("create beyond cap: status %d, want 429", resp.StatusCode)
	}

	// Unknown session id.
	resp, err = http.Get(ts.URL + "/session/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown session: status %d", resp.StatusCode)
	}

	// A bad event answers 400 and reports the applied prefix.
	var buf bytes.Buffer
	fmt.Fprintln(&buf, `{"op":"arrive","task":{"id":"a","configs":[{"procs":[0],"weight":2}]}}`)
	fmt.Fprintln(&buf, `{"op":"depart","id":"ghost"}`)
	resp, err = http.Post(ts.URL+"/session/"+id+"/events", "application/x-ndjson", &buf)
	if err != nil {
		t.Fatal(err)
	}
	var er eventsResponse
	json.NewDecoder(resp.Body).Decode(&er)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || len(er.Reports) != 1 || er.Error == "" {
		t.Fatalf("bad batch: status %d, %d reports, error %q", resp.StatusCode, len(er.Reports), er.Error)
	}

	// The metric families must be live and the event counted.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"semimatch_sessions_open 1",
		"semimatch_sessions_total 1",
		"semimatch_session_events_total 1",
		"semimatch_sessions_evicted_total 0",
		"semimatch_session_overloaded_total 0",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Fatalf("metrics missing %q", want)
		}
	}

	// DELETE closes; further events answer 404 (gone from the manager).
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/session/"+id, nil)
	if resp, err := http.DefaultClient.Do(req); err != nil || resp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE: %v (%v)", err, resp.Status)
	}
	resp, err = http.Post(ts.URL+"/session/"+id+"/events", "application/x-ndjson",
		strings.NewReader(`{"op":"depart","id":"a"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("events after delete: status %d", resp.StatusCode)
	}
}

// TestSessionIdleEviction proves idle sessions are reaped and counted.
func TestSessionIdleEviction(t *testing.T) {
	ts, _ := startSessionServer(t, serverConfig{sessions: 4, sessionIdle: 150 * time.Millisecond})
	id := createSession(t, ts.URL, session.ScriptHeader{Procs: 2})
	// Snapshot reads count as activity, so poll the metrics — not the
	// session — while waiting for the sweeper.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		metrics, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if strings.Contains(string(metrics), "semimatch_sessions_evicted_total 1") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("idle session never evicted")
		}
		time.Sleep(50 * time.Millisecond)
	}
	resp, err := http.Get(ts.URL + "/session/" + id)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("evicted session still routable: status %d", resp.StatusCode)
	}
}

// TestSessionsDisabled: -sessions 0 removes the surface.
func TestSessionsDisabled(t *testing.T) {
	ts, _ := startSessionServer(t, serverConfig{})
	resp, err := http.Post(ts.URL+"/session", "application/json", strings.NewReader(`{"procs":2}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("sessions disabled: status %d, want 404", resp.StatusCode)
	}
}
