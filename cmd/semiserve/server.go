package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"semimatch/internal/encode"
	"semimatch/internal/hypergraph"
	"semimatch/internal/registry"
	"semimatch/internal/sched"
	"semimatch/internal/service"
	"semimatch/internal/solve"
)

// defaultMaxBody bounds one /solve request body (overridable with
// -max-body). Worst-case buffered body memory is maxBody × maxInflight —
// 1 GiB at the defaults (16 MiB × 64) — so both knobs must be raised
// together deliberately, not by accident. 16 MiB of the text format is
// roughly half a million hyperedges; the paper's largest grids need a
// few times that, which is exactly what -max-body is for.
const defaultMaxBody = 16 << 20

// server is the HTTP front end over one Service.
type server struct {
	svc         *service.Service
	maxDeadline time.Duration
	maxBody     int64
	start       time.Time
	// inflight caps concurrent /solve handlers. The service's own
	// admission control only bounds solves; this bound also covers the
	// per-request work done before a request reaches it — body
	// buffering, parsing, canonicalization, hashing — so a flood of
	// large instances is shed before it burns that cost. nil means
	// unlimited.
	inflight chan struct{}
}

// newServer wires the HTTP routes. maxDeadline caps the per-request
// ?deadline= override (0 means no cap); maxInflight caps concurrent
// /solve handlers (0 means unlimited); maxBody caps one request body
// (0 means defaultMaxBody).
func newServer(svc *service.Service, maxDeadline time.Duration, maxInflight int, maxBody int64) http.Handler {
	s := &server{svc: svc, maxDeadline: maxDeadline, maxBody: maxBody, start: time.Now()}
	if s.maxBody <= 0 {
		s.maxBody = defaultMaxBody
	}
	if maxInflight > 0 {
		s.inflight = make(chan struct{}, maxInflight)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/solve", s.handleSolve)
	mux.HandleFunc("/algorithms", s.handleAlgorithms)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", s.handleHealthz)
	return mux
}

// solveResponse is the JSON body of a successful POST /solve; the schema
// is documented in doc.go.
type solveResponse struct {
	Kind        string `json:"kind"`
	Fingerprint string `json:"fingerprint"`
	Algorithm   string `json:"algorithm"`
	Makespan    int64  `json:"makespan"`
	// LowerBound is the strongest proven lower bound on the optimal
	// makespan; makespan − lower_bound is the optimality gap the client
	// can see without trusting the status field.
	LowerBound int64 `json:"lower_bound"`
	// Status is the unified solve API's optimality class:
	// "optimal", "heuristic" or "truncated".
	Status    string `json:"status"`
	Optimal   bool   `json:"optimal"`
	Truncated bool   `json:"truncated"`
	// Trust is the certificate trust tier the service established by
	// independent verification: "verified", "attested" or "heuristic".
	Trust string `json:"trust"`
	// Witness names the optimality argument of the result's certificate:
	// "average-load", "max-element", "exhaustive" or "none".
	Witness  string  `json:"witness,omitempty"`
	Cached   bool    `json:"cached"`
	ElapsedS float64 `json:"elapsed_s"`
	// Assignment maps task → processor (bipartite) or task → hyperedge id
	// in the posted instance's task-grouped numbering (hypergraph).
	Assignment []int32 `json:"assignment"`
	// Configs, present for JSON instances only, maps task → chosen
	// configuration index in the posted order.
	Configs []int32 `json:"configs,omitempty"`
	Loads   []int64 `json:"loads"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func (s *server) handleSolve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if s.inflight != nil {
		select {
		case s.inflight <- struct{}{}:
			defer func() { <-s.inflight }()
		default:
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, "too many requests in flight")
			return
		}
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.maxBody))
	if err != nil {
		status := http.StatusBadRequest
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			status = http.StatusRequestEntityTooLarge
		}
		writeError(w, status, fmt.Sprintf("reading body: %v", err))
		return
	}

	ctx := r.Context()
	if d := r.URL.Query().Get("deadline"); d != "" {
		dur, err := time.ParseDuration(d)
		if err != nil || dur <= 0 {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("bad deadline %q (want a positive Go duration, e.g. 500ms)", d))
			return
		}
		if s.maxDeadline > 0 && dur > s.maxDeadline {
			dur = s.maxDeadline
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, dur)
		defer cancel()
	}

	instance, fromJSON, err := parseInstance(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	res, err := s.svc.Solve(ctx, instance, r.URL.Query().Get("alg"))
	if err != nil {
		status := http.StatusInternalServerError
		switch {
		case errors.Is(err, service.ErrOverloaded):
			w.Header().Set("Retry-After", "1")
			status = http.StatusTooManyRequests
		case errors.Is(err, service.ErrUnknownAlgorithm), errors.Is(err, service.ErrBadInstance):
			status = http.StatusBadRequest
		case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
			status = http.StatusGatewayTimeout
		}
		writeError(w, status, err.Error())
		return
	}

	status := solve.StatusHeuristic
	switch {
	case res.Truncated:
		status = solve.StatusTruncated
	case res.Optimal:
		status = solve.StatusOptimal
	}
	resp := solveResponse{
		Kind:        res.Kind,
		Fingerprint: res.Fingerprint,
		Algorithm:   res.Algorithm,
		Makespan:    res.Makespan,
		LowerBound:  res.LowerBound,
		Status:      status.String(),
		Optimal:     res.Optimal,
		Truncated:   res.Truncated,
		Trust:       res.Trust.String(),
		Cached:      res.Cached,
		ElapsedS:    res.Elapsed.Seconds(),
		Assignment:  res.Assignment,
		Loads:       res.Loads,
	}
	if res.Certificate != nil {
		resp.Witness = res.Certificate.Witness.Kind.String()
	}
	if fromJSON {
		// For the named-task JSON form, translate hyperedge ids back to
		// per-task configuration indices (configuration j of task t is
		// hyperedge TaskEdges(t)[j]).
		if h, ok := instance.(*hypergraph.Hypergraph); ok {
			resp.Configs = make([]int32, len(res.Assignment))
			for t, e := range res.Assignment {
				resp.Configs[t] = e - h.TaskPtr[t]
			}
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// parseInstance decodes a request body: the encode text formats
// ("bipartite ..." / "hypergraph ...") or the cmd/semisched JSON instance
// schema (detected by a leading '{'), which is converted to its
// hypergraph form.
func parseInstance(body []byte) (instance any, fromJSON bool, err error) {
	trimmed := bytes.TrimLeft(body, " \t\r\n")
	if len(trimmed) == 0 {
		return nil, false, errors.New("empty request body")
	}
	if trimmed[0] == '{' {
		in, err := sched.ReadInstanceJSON(bytes.NewReader(trimmed))
		if err != nil {
			return nil, true, err
		}
		h, err := in.Hypergraph()
		if err != nil {
			return nil, true, err
		}
		return h, true, nil
	}
	kind, err := encode.DetectKind(body)
	if err != nil {
		return nil, false, err
	}
	if kind == "bipartite" {
		g, err := encode.ReadBipartite(bytes.NewReader(body))
		return g, false, err
	}
	h, err := encode.ReadHypergraph(bytes.NewReader(body))
	return h, false, err
}

func (s *server) handleAlgorithms(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	registry.WriteCatalogNDJSON(w)
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	writeJSON(w, http.StatusOK, struct {
		service.Stats
		UptimeS float64 `json:"uptime_s"`
	}{s.svc.Stats(), time.Since(s.start).Seconds()})
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorResponse{Error: strings.TrimSpace(msg)})
}
