package main

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"

	"semimatch/internal/cluster"
	"semimatch/internal/encode"
	"semimatch/internal/hypergraph"
	"semimatch/internal/registry"
	"semimatch/internal/sched"
	"semimatch/internal/service"
	"semimatch/internal/solve"
	"semimatch/internal/telemetry"
)

// defaultMaxBody bounds one /solve request body (overridable with
// -max-body). Worst-case buffered body memory is maxBody × maxInflight —
// 1 GiB at the defaults (16 MiB × 64) — so both knobs must be raised
// together deliberately, not by accident. 16 MiB of the text format is
// roughly half a million hyperedges; the paper's largest grids need a
// few times that, which is exactly what -max-body is for.
const defaultMaxBody = 16 << 20

// serverConfig carries the HTTP layer's knobs from main (or a test) into
// newServer.
type serverConfig struct {
	// maxDeadline caps the per-request ?deadline= override; 0 means no
	// cap.
	maxDeadline time.Duration
	// maxInflight caps concurrent /solve handlers, parsing included; 0
	// means unlimited.
	maxInflight int
	// maxBody caps one request body; 0 means defaultMaxBody.
	maxBody int64
	// logger receives one structured access-log line per request; nil
	// disables access logging.
	logger *slog.Logger
	// pprof mounts net/http/pprof under /debug/pprof/.
	pprof bool
	// ring and client enable the cluster layer (-peers/-self): the
	// /internal/cache peer endpoint and, with forward, fingerprint-
	// sharded request routing. Both nil means a standalone server.
	ring   *cluster.Ring
	client *cluster.Client
	// forward routes solve requests for non-owned fingerprints to the
	// owning replica; false serves everything locally and relies on
	// cache peering alone.
	forward bool
	// sessions caps concurrently open dynamic sessions (-sessions); 0
	// disables the /session endpoints entirely.
	sessions int
	// sessionIdle evicts sessions with no events and no open stream for
	// this long (-session-idle); 0 means never.
	sessionIdle time.Duration
	// trace mirrors "a TraceWriter is configured": session re-solves then
	// carry span trees for the session-event traces.
	trace bool
}

// server is the HTTP front end over one Service.
type server struct {
	svc         *service.Service
	maxDeadline time.Duration
	maxBody     int64
	log         *slog.Logger
	// reqLatency is the semimatch_http_request_seconds histogram, living
	// in the service's registry so one /metrics scrape covers both layers.
	reqLatency *telemetry.Histogram
	// inflight caps concurrent /solve handlers. The service's own
	// admission control only bounds solves; this bound also covers the
	// per-request work done before a request reaches it — body
	// buffering, parsing, canonicalization, hashing — so a flood of
	// large instances is shed before it burns that cost. nil means
	// unlimited.
	inflight chan struct{}
	// Cluster layer (nil ring = standalone): see serverConfig.
	ring    *cluster.Ring
	client  *cluster.Client
	forward bool
	fwd     forwardCounters
	// sessions owns the dynamic-session endpoints; nil when disabled.
	sessions *sessionManager
}

// newServer wires the HTTP routes and the instrumentation middleware
// (request ids, the request-latency histogram, access logs). It registers
// the HTTP metric families into svc's registry, so each Service can front
// at most one server.
func newServer(svc *service.Service, cfg serverConfig) http.Handler {
	s := &server{
		svc: svc, maxDeadline: cfg.maxDeadline, maxBody: cfg.maxBody, log: cfg.logger,
		ring: cfg.ring, client: cfg.client, forward: cfg.forward,
	}
	if s.maxBody <= 0 {
		s.maxBody = defaultMaxBody
	}
	if cfg.maxInflight > 0 {
		s.inflight = make(chan struct{}, cfg.maxInflight)
	}
	s.reqLatency = svc.Metrics().Histogram("semimatch_http_request_seconds",
		"HTTP request latency, handler entry to response end.", nil)
	s.svc.Metrics().CounterFunc("semimatch_peer_forwards_total",
		"Solve requests forwarded to the replica owning their fingerprint.", s.fwd.forwards.Load)
	s.svc.Metrics().CounterFunc("semimatch_peer_forward_errors_total",
		"Forward attempts that failed in transport (answered locally instead).", s.fwd.forwardErrors.Load)
	if cfg.sessions > 0 {
		s.sessions = newSessionManager(svc, cfg.sessions, cfg.sessionIdle, cfg.trace)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/solve", s.handleSolve)
	mux.HandleFunc("/session", s.handleSessionRoot)
	mux.HandleFunc("/session/", s.handleSession)
	mux.HandleFunc("/internal/cache/", s.handlePeerCache)
	mux.HandleFunc("/algorithms", s.handleAlgorithms)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/solves", s.handleDebugSolves)
	mux.HandleFunc("/healthz", s.handleHealthz)
	if cfg.pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s.instrument(mux)
}

// reqInfo is per-request annotation the solve handler fills in for the
// access log: what was asked, what answered it.
type reqInfo struct {
	alg, fingerprint, tier, status string
}

type reqInfoKey struct{}

// statusWriter captures the response status for metrics and logs.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// Unwrap lets http.ResponseController reach the underlying writer for
// per-request deadline control and flushing (the SSE stream needs both).
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// newRequestID returns a 16-hex-char random request id.
func newRequestID() string {
	var b [8]byte
	rand.Read(b[:])
	return hex.EncodeToString(b[:])
}

// instrument wraps the route mux with the observability middleware: a
// request id issued to the client as X-Request-Id, one latency histogram
// observation, and one structured access-log line per request.
func (s *server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := newRequestID()
		w.Header().Set("X-Request-Id", id)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		info := &reqInfo{}
		next.ServeHTTP(sw, r.WithContext(context.WithValue(r.Context(), reqInfoKey{}, info)))
		elapsed := time.Since(start)
		s.reqLatency.Observe(elapsed.Seconds())
		if s.log == nil {
			return
		}
		attrs := []slog.Attr{
			slog.String("id", id),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", sw.status),
			slog.Duration("elapsed", elapsed),
		}
		if info.alg != "" {
			attrs = append(attrs, slog.String("alg", info.alg))
		}
		if info.fingerprint != "" {
			fp := info.fingerprint
			if len(fp) > 12 {
				fp = fp[:12]
			}
			tier := info.tier
			if tier == "" {
				tier = "none"
			}
			attrs = append(attrs, slog.String("fp", fp), slog.String("cache", tier))
		}
		if info.status != "" {
			attrs = append(attrs, slog.String("solve_status", info.status))
		}
		s.log.LogAttrs(r.Context(), slog.LevelInfo, "request", attrs...)
	})
}

// solveResponse is the JSON body of a successful POST /solve; the schema
// is documented in doc.go.
type solveResponse struct {
	Kind        string `json:"kind"`
	Fingerprint string `json:"fingerprint"`
	Algorithm   string `json:"algorithm"`
	Makespan    int64  `json:"makespan"`
	// LowerBound is the strongest proven lower bound on the optimal
	// makespan; makespan − lower_bound is the optimality gap the client
	// can see without trusting the status field.
	LowerBound int64 `json:"lower_bound"`
	// Status is the unified solve API's optimality class:
	// "optimal", "heuristic" or "truncated".
	Status    string `json:"status"`
	Optimal   bool   `json:"optimal"`
	Truncated bool   `json:"truncated"`
	// Trust is the certificate trust tier the service established by
	// independent verification: "verified", "attested" or "heuristic".
	Trust string `json:"trust"`
	// Witness names the optimality argument of the result's certificate:
	// "average-load", "max-element", "exhaustive" or "none".
	Witness string `json:"witness,omitempty"`
	Cached  bool   `json:"cached"`
	// CacheTier names the tier that answered: "memory", "disk", "peer"
	// (adopted from the owning replica after local re-verification), or
	// "none" for a fresh solve.
	CacheTier string  `json:"cache_tier,omitempty"`
	ElapsedS  float64 `json:"elapsed_s"`
	// Assignment maps task → processor (bipartite) or task → hyperedge id
	// in the posted instance's task-grouped numbering (hypergraph).
	Assignment []int32 `json:"assignment"`
	// Configs, present for JSON instances only, maps task → chosen
	// configuration index in the posted order.
	Configs []int32 `json:"configs,omitempty"`
	Loads   []int64 `json:"loads"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func (s *server) handleSolve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if s.inflight != nil {
		select {
		case s.inflight <- struct{}{}:
			defer func() { <-s.inflight }()
		default:
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, "too many requests in flight")
			return
		}
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.maxBody))
	if err != nil {
		status := http.StatusBadRequest
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			status = http.StatusRequestEntityTooLarge
		}
		writeError(w, status, fmt.Sprintf("reading body: %v", err))
		return
	}

	ctx := r.Context()
	if d := r.URL.Query().Get("deadline"); d != "" {
		dur, err := time.ParseDuration(d)
		if err != nil || dur <= 0 {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("bad deadline %q (want a positive Go duration, e.g. 500ms)", d))
			return
		}
		if s.maxDeadline > 0 && dur > s.maxDeadline {
			dur = s.maxDeadline
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, dur)
		defer cancel()
	}

	instance, fromJSON, err := parseInstance(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	info, _ := ctx.Value(reqInfoKey{}).(*reqInfo)
	if info == nil {
		info = &reqInfo{}
	}
	info.alg = r.URL.Query().Get("alg")
	if s.maybeForward(w, r, body, instance) {
		info.tier = "forwarded"
		return
	}
	res, err := s.svc.Solve(ctx, instance, info.alg)
	if err != nil {
		status := http.StatusInternalServerError
		switch {
		case errors.Is(err, service.ErrOverloaded):
			w.Header().Set("Retry-After", "1")
			status = http.StatusTooManyRequests
		case errors.Is(err, service.ErrUnknownAlgorithm), errors.Is(err, service.ErrBadInstance):
			status = http.StatusBadRequest
		case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
			status = http.StatusGatewayTimeout
		}
		writeError(w, status, err.Error())
		return
	}

	status := solve.StatusHeuristic
	switch {
	case res.Truncated:
		status = solve.StatusTruncated
	case res.Optimal:
		status = solve.StatusOptimal
	}
	info.alg = res.Algorithm
	info.fingerprint = res.Fingerprint
	info.tier = res.Tier
	info.status = status.String()
	resp := solveResponse{
		Kind:        res.Kind,
		Fingerprint: res.Fingerprint,
		Algorithm:   res.Algorithm,
		Makespan:    res.Makespan,
		LowerBound:  res.LowerBound,
		Status:      status.String(),
		Optimal:     res.Optimal,
		Truncated:   res.Truncated,
		Trust:       res.Trust.String(),
		Cached:      res.Cached,
		CacheTier:   res.Tier,
		ElapsedS:    res.Elapsed.Seconds(),
		Assignment:  res.Assignment,
		Loads:       res.Loads,
	}
	if res.Certificate != nil {
		resp.Witness = res.Certificate.Witness.Kind.String()
	}
	if fromJSON {
		// For the named-task JSON form, translate hyperedge ids back to
		// per-task configuration indices (configuration j of task t is
		// hyperedge TaskEdges(t)[j]).
		if h, ok := instance.(*hypergraph.Hypergraph); ok {
			resp.Configs = make([]int32, len(res.Assignment))
			for t, e := range res.Assignment {
				resp.Configs[t] = e - h.TaskPtr[t]
			}
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// parseInstance decodes a request body: the encode text formats
// ("bipartite ..." / "hypergraph ...") or the cmd/semisched JSON instance
// schema (detected by a leading '{'), which is converted to its
// hypergraph form.
func parseInstance(body []byte) (instance any, fromJSON bool, err error) {
	trimmed := bytes.TrimLeft(body, " \t\r\n")
	if len(trimmed) == 0 {
		return nil, false, errors.New("empty request body")
	}
	if trimmed[0] == '{' {
		in, err := sched.ReadInstanceJSON(bytes.NewReader(trimmed))
		if err != nil {
			return nil, true, err
		}
		h, err := in.Hypergraph()
		if err != nil {
			return nil, true, err
		}
		return h, true, nil
	}
	kind, err := encode.DetectKind(body)
	if err != nil {
		return nil, false, err
	}
	if kind == "bipartite" {
		g, err := encode.ReadBipartite(bytes.NewReader(body))
		return g, false, err
	}
	h, err := encode.ReadHypergraph(bytes.NewReader(body))
	return h, false, err
}

func (s *server) handleAlgorithms(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	registry.WriteCatalogNDJSON(w)
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	writeJSON(w, http.StatusOK, s.svc.Stats())
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.svc.Metrics().WritePrometheus(w)
}

func (s *server) handleDebugSolves(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Solves []service.LiveSolve `json:"solves"`
	}{s.svc.LiveSolves()})
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorResponse{Error: strings.TrimSpace(msg)})
}
