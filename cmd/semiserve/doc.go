// Command semiserve is the solving-as-a-service HTTP front end: a
// long-running server over internal/service that canonicalizes and
// fingerprints every posted instance, answers repeats (including
// isomorphic reorderings) from a sharded LRU result cache backed by an
// optional durable disk tier, deduplicates concurrent identical requests
// into one solve, and sheds load with 429 once its admission queue is
// full. Every complete result carries a verifiable certificate
// (internal/cert); the service re-verifies certificates before caching
// and before serving from disk, so a restart warms the cache from disk
// without ever trusting stale or tampered files.
//
// With -peers/-self, N semiserve processes form a shared-nothing fleet:
// requests route by instance fingerprint over a rendezvous-hash ring
// (internal/cluster), and replicas exchange verified cache entries, so
// adding processes multiplies both solve throughput and effective cache
// capacity — see "Clustering" below.
//
// Usage:
//
//	semiserve                          # listen on :8080
//	semiserve -addr 127.0.0.1:0        # free port; scrape it from stdout
//	semiserve -cache 65536 -queue 256  # bigger deployment
//	semiserve -cache-dir /var/cache/semimatch  # durable cache tier
//	semiserve -deadline 2s             # default per-request budget
//	semiserve -http-inflight 32 -max-body 4194304  # tighter memory bounds
//	semiserve -refine                  # local search on auto-policy schedules
//	semiserve -log-level debug         # structured access logs (off silences them)
//	semiserve -ledger solves.jsonl     # append one solve-ledger record per solve
//	semiserve -trace traces.ndjson     # NDJSON request-span trees ("-" = stderr)
//	semiserve -pprof                   # mount net/http/pprof under /debug/pprof/
//	semiserve -sessions 128 -session-idle 10m  # more live dynamic sessions
//	semiserve -sessions 0              # disable the /session endpoints
//	semiserve -self http://10.0.0.3:8080 \
//	          -peers http://10.0.0.3:8080,http://10.0.0.4:8080 \
//	          -addr :8080              # one replica of a two-process fleet
//
// # POST /solve
//
// The request body is an instance in either of two formats:
//
//   - the internal/encode text format ("bipartite ..." or "hypergraph
//     ...", the format cmd/semigen writes and cmd/semisolve reads);
//   - the cmd/semisched JSON instance schema (detected by a leading '{'):
//     {"processors": [...], "tasks": [{"name": ..., "configs":
//     [{"procs": [...], "time": ...}]}]}, converted to its hypergraph
//     form.
//
// Query parameters:
//
//	alg       algorithm name or alias from the solver registry (see GET
//	          /algorithms); empty selects the auto policy — the batch
//	          pipeline (portfolio, then exact branch-and-bound when small
//	          enough) for hypergraphs, ExactUnit/expected for bipartite
//	          instances.
//	deadline  per-request budget as a Go duration ("500ms", "5s"),
//	          capped by -max-deadline; without it the server's -deadline
//	          default applies. When the budget expires mid-solve the
//	          response carries the best schedule found so far with
//	          "truncated": true instead of failing.
//
// A 200 response is one JSON object:
//
//	{
//	  "kind": "hypergraph",            // bipartite | hypergraph
//	  "fingerprint": "4f1c…",          // canonical content hash (SHA-256)
//	  "algorithm": "auto:EVG",         // solver, or auto:<winning source>
//	  "makespan": 42,
//	  "lower_bound": 40,               // strongest proven lower bound;
//	                                   // makespan − lower_bound is the gap
//	  "status": "heuristic",           // optimal | heuristic | truncated
//	  "optimal": false,                // provably optimal
//	  "truncated": false,              // deadline/budget-truncated incumbent
//	  "trust": "verified",             // certificate trust tier the server
//	                                   // established: verified | attested |
//	                                   // heuristic
//	  "witness": "average-load",       // certificate's optimality argument:
//	                                   // average-load | max-element |
//	                                   // exhaustive | none (omitted when no
//	                                   // certificate was issued)
//	  "cached": true,                  // served from a cache tier
//	  "cache_tier": "memory",          // which tier: memory | disk | peer
//	                                   // ("none" for freshly solved)
//	  "elapsed_s": 0.0031,             // solve wall-clock (≈0 for hits)
//	  "assignment": [0, 2, 5],         // task → processor (bipartite) or
//	                                   // task → hyperedge id (hypergraph,
//	                                   // in the posted task-grouped order)
//	  "configs": [0, 1, 0],            // JSON instances only: task →
//	                                   // configuration index as posted
//	  "loads": [12, 42, 7]             // per-processor loads
//	}
//
// Results are cached by (fingerprint, algorithm, budget class), so two
// isomorphic instances — the same hypergraph with configurations or
// processors listed in a different order — share one cache entry; the
// assignment (and its certificate) is translated to each requester's own
// numbering before it is returned. Truncated results, and results whose
// certificate fails the server's independent verification, are never
// cached.
//
// With -cache-dir the cache gains a durable tier: verified results are
// additionally persisted as content-addressed entry files (atomic
// tmp+rename writes, versioned header, payload checksum), and a cache
// miss consults the directory before solving — so a restarted server
// answers previously solved instances, including isomorphic
// restatements, from disk. Entries are re-verified on load; a corrupt,
// truncated, stale-version or tampered file is skipped and reaped, never
// served.
//
// Errors are {"error": "..."} with status 400 (malformed instance,
// unknown algorithm, bad deadline), 429 (admission queue full, or more
// than -http-inflight /solve requests in flight; comes with a
// Retry-After header), 504 (deadline expired before any schedule
// existed) or 500.
//
// # GET /algorithms
//
// The solver-registry catalog as newline-delimited JSON, one record per
// algorithm — the same schema `semisolve -list-algorithms -json` and
// `semibench -list-algorithms -json` emit:
//
//	{"name": "EVG", "aliases": ["expected-vector-greedy"],
//	 "class": "MULTIPROC", "kind": "heuristic", "cost": "near-linear",
//	 "optimal": false, "summary": "expected-load vector greedy …"}
//
// # GET /stats
//
// A JSON snapshot of the serving counters and gauges:
//
//	requests          total /solve requests admitted for processing
//	cache_hits        memory-tier hits (isomorphic repeats included)
//	cache_misses      memory-tier misses
//	cache_evictions   LRU evictions
//	cache_entries     current memory-tier size
//	coalesced         single-flight deduplicated concurrent requests
//	solves            fresh solves actually run
//	solve_errors      solves that returned an error
//	truncated         deadline/budget-truncated solves (never cached)
//	verify_failures   results whose certificate failed re-verification
//	overloaded        429 responses (queue full or -http-inflight hit)
//	in_flight         solves executing right now (gauge)
//	queue_len         requests waiting in the admission queue (gauge)
//	queue_depth       admission-queue capacity (-queue)
//	workers           solver worker count
//	uptime_s          seconds since the service started
//
// With -cache-dir the disk tier adds disk_hits, disk_misses,
// disk_writes, disk_write_errors and disk_reaped (garbled or
// unverifiable entries removed on load). With -peers the peer tier adds
// peer_hits (entries adopted from the owning replica after local
// re-verification), peer_misses, peer_errors, peer_verify_failures
// (rejected peer entries — shape mismatch or lying certificate; never
// cached) and peer_served (entries handed to peers).
//
// # GET /metrics
//
// The same counters (plus request-latency and queue-wait histograms) in
// Prometheus text exposition format 0.0.4, served from a dependency-free
// registry. Families are prefixed semimatch_; the full taxonomy is in
// the README's observability section. Counters are func-backed views of
// the service's existing atomics, so scraping costs the request path
// nothing.
//
// # GET /debug/solves
//
// Live search introspection: a JSON list of in-flight solves, each with
// the instance fingerprint, algorithm, running time, and the engine's
// latest progress snapshot (nodes expanded, nodes/sec, incumbent, bound,
// gap). Empty list when idle. With -pprof, net/http/pprof is additionally
// mounted under /debug/pprof/.
//
// # Observability
//
// Every response carries an X-Request-Id header (16 hex chars). With
// -log-level (debug|info|warn|error; "off" disables), each request emits
// one structured log/slog line: id, method, path, status, elapsed, and —
// for solves — alg, fp (fingerprint prefix), cache tier and solve
// status. With -trace, each /solve request appends its span tree
// (request → canonicalize, queue-wait, solve…, verify, cache-admission)
// as NDJSON, one tree per request. With -ledger, every fresh solve
// appends a solve-ledger record (instance features, algorithm, wall,
// nodes, status; source "service") — the same JSONL schema semibench's
// -ledger writes, see internal/telemetry.
//
// # Dynamic sessions (POST /session, -sessions)
//
// A session is a long-lived scheduling instance that evolves by events
// instead of being re-posted whole: tasks arrive, depart and change
// weight, and after every event the session holds a feasible schedule —
// first by an O(log p) online patch, then (when the instance is small
// enough) by a bounded exact re-solve warm-started from the patched
// schedule and adopted only when it beats the patch on the
// migration-aware objective makespan + λ·Σ(moved task weight). See
// internal/session and the README's dynamic-sessions section.
//
// POST /session opens one. The body is a session script header (the
// same JSON object that heads a semisolve -session script file); every
// field is optional except procs:
//
//	{"procs": 4,                // processor count (required, ≥ 1)
//	 "multi": false,            // MULTIPROC session (hypergraph events)
//	 "lambda": 1,               // migration-cost weight λ (0 = pure makespan)
//	 "node_budget": 2000000,    // per-re-solve node cap
//	 "exact_task_limit": 16,    // skip the exact stage above this many tasks
//	 "compare_cold": false}     // also run a cold re-solve per event, for
//	                            // the warm/cold node comparison (measurement)
//
// A 201 response is {"id": "...", "procs": 4, "multi": false,
// "idle_timeout_s": 300}; 429 when -sessions live sessions already
// exist. Sessions are in-memory (not replicated, not on the cluster
// ring) and are evicted after -session-idle without events, reads or an
// open stream. Session re-solves acquire the same admission slots as
// /solve requests — one shared capacity — and run single-worker, so
// per-event node counts are deterministic. An overloaded service skips
// the re-solve (the patched schedule stands, solve_status
// "overloaded") rather than queue-jumping. With -ledger, each adopted
// or attempted re-solve appends a ledger record with source "session";
// with -trace, each event emits a session-event span tree.
//
// GET /session lists open sessions; GET /session/{id} returns the
// session's current state (schedule, loads, makespan, live
// tasks, event count); DELETE /session/{id} closes it (204).
//
// # POST /session/{id}/events
//
// The body is one JSON event per line (NDJSON; a single event is a
// one-line batch):
//
//	{"op": "arrive", "task": {"id": "t1",
//	  "configs": [{"procs": [0], "weight": 5}, {"procs": [2], "weight": 5}]}}
//	{"op": "arrive", "task": {"id": "t2",
//	  "configs": [{"procs": [0, 1], "weight": 3}, {"procs": [2], "weight": 7}]}}
//	{"op": "reweigh", "id": "t1", "weight": 9}
//	{"op": "depart", "id": "t1"}
//
// A task arrives with its configurations — the ways it may run. In a
// SINGLEPROC session every configuration names exactly one processor
// (t1 above may run on processor 0 or 2); in a MULTIPROC session a
// configuration's weight lands on every processor in its set, and one
// configuration is chosen (t2). Events apply in order; the
// first bad event stops the batch with 400 (410 once the session is
// closed) and the response still carries the reports of the events
// already applied. A 200 response is {"reports": [SessionReport, ...]}
// with one report per event:
//
//	{"seq": 7,                   // session-wide event sequence number
//	 "op": "arrive", "task": "t7",
//	 "makespan": 42,             // after this event (adopted schedule)
//	 "patched_makespan": 45,     // the online patch alone
//	 "lower_bound": 40,
//	 "score": 50,                // makespan + λ·migration_cost
//	 "status": "optimal",        // adopted schedule's provenance:
//	                             // "patched", or the re-solve's status
//	 "solve_status": "optimal",  // re-solve outcome: a solve status, or
//	                             // "skipped" | "overloaded" | "error"
//	 "adopted": true,            // re-solve beat the patch and replaced it
//	 "migrations": 2,            // tasks the adopted schedule moved
//	 "migration_cost": 8,        // Σ weight of moved tasks
//	 "nodes": 153,               // warm-started re-solve's BnB nodes
//	 "cold_nodes": 418,          // cold comparison run's (compare_cold)
//	 "tasks": 12, "elapsed_ns": 2100000}
//
// # GET /session/{id}/events (SSE)
//
// The same path with GET streams the session over Server-Sent Events
// (Content-Type text/event-stream, exempt from the server's write
// timeout). Events, each with a JSON data payload:
//
//	state      first event on connect: the session state snapshot
//	incumbent  a re-solve improved its schedule mid-search: {"seq": ...,
//	           "makespan": ..., "assignment": [...], "solver": ...,
//	           "elapsed_s": ..., "final": ...} — seq ties the trajectory
//	           to the session event that triggered the re-solve
//	report     one SessionReport per applied event (same object as the
//	           POST response)
//	closed     the session was deleted or evicted; the stream ends
//
// A slow consumer is dropped-from, not waited-for: each subscriber has a
// bounded buffer and pushes beyond it are discarded, so streaming never
// stalls event processing.
//
// # GET /healthz
//
// "ok" with status 200; for load balancers and the CI smoke test.
//
// # Clustering (-peers, -self)
//
// -peers takes the comma-separated base URLs of every replica in the
// fleet (bare host:port is accepted; listing or omitting this process's
// own URL both work) and -self this replica's URL as peers reach it.
// Every replica builds the same rendezvous-hash ring from that static
// list — spellings and order are normalized away — so the fleet agrees
// on which replica owns each instance fingerprint with no coordination,
// and removing a replica remaps only its own ~1/N share of keys.
// Because fingerprints are canonical (isomorphic instances hash equal),
// all restatements of one instance converge on one replica's cache and
// single-flight group no matter where clients post them.
//
// Two cooperating mechanisms use the ring:
//
// Request forwarding (-forward, default true): a /solve request whose
// fingerprint another replica owns is relayed there in one hop, marked
// with an X-Semimatch-Hop header so the receiving replica always answers
// locally — a stale peer list degrades to one extra hop, never a loop.
// The relayed response carries X-Semimatch-Forwarded-To naming the
// owner; a transport failure falls back to a local solve, so a dead
// replica costs latency, not availability. With -forward=false every
// replica answers its own traffic and relies on cache peering alone.
//
// Cache peering (always on with -peers): on a local memory+disk miss,
// the single-flight leader asks the owning replica for its entry over
//
//	GET /internal/cache/{key}
//
// where {key} is the path-escaped cache key "fingerprint|algorithm|
// budget-class". The owner answers from its memory or disk tier with
// the entry JSON — the same durable fields the disk tier persists (key
// echo, kind, fingerprint, algorithm, makespan, assignment, loads,
// lower_bound, optimal, certificate) — or 404 on a miss. The fetching
// replica re-verifies the entry's certificate against its own canonical
// instance before adopting it (cache_tier "peer"), so no replica ever
// trusts another's arithmetic: a tampered or lying entry is dropped,
// counted in peer_verify_failures and verify_failures, and never enters
// any cache tier. Peer fetches run under -peer-timeout, tightened to
// half the request's remaining deadline, so a slow peer cannot hold a
// coalesced group past its budget.
package main
