package main

import (
	"context"
	"io"
	"net/http"
	"strings"
	"sync/atomic"

	"semimatch/internal/bipartite"
	"semimatch/internal/cluster"
	"semimatch/internal/encode"
	"semimatch/internal/hypergraph"
	"semimatch/internal/service"
)

// peerAdapter implements service.PeerCache over the cluster ring and
// HTTP client: ownership questions go to the ring, entry fetches to the
// owning replica's GET /internal/cache/{key}. The service layer re-
// verifies everything that comes back; this adapter only moves bytes.
type peerAdapter struct {
	ring   *cluster.Ring
	client *cluster.Client
}

func (p *peerAdapter) Owner(fp string) (peer string, self bool) {
	owner := p.ring.Owner(fp)
	return owner, owner == p.ring.Self()
}

func (p *peerAdapter) Fetch(ctx context.Context, peer, key string) (*service.PeerEntry, bool, error) {
	var e service.PeerEntry
	ok, err := p.client.FetchEntry(ctx, peer, key, &e)
	if err != nil || !ok {
		return nil, false, err
	}
	return &e, true, nil
}

// forwardCounters are the HTTP layer's routing counters, surfaced as
// semimatch_peer_forwards_total / semimatch_peer_forward_errors_total.
type forwardCounters struct {
	forwards      atomic.Uint64
	forwardErrors atomic.Uint64
}

// fingerprintOf computes the routing key of a parsed instance — the same
// canonical fingerprint the service keys its cache by, so the replica
// the ring picks is exactly the one whose cache can already hold the
// answer. An unfingerprintable instance returns "" and is handled
// locally (service.Solve will reject it with a proper error).
func fingerprintOf(instance any) string {
	switch v := instance.(type) {
	case *hypergraph.Hypergraph:
		fp, err := encode.FingerprintHypergraph(v)
		if err != nil {
			return ""
		}
		return fp
	case *bipartite.Graph:
		fp, err := encode.FingerprintBipartite(v)
		if err != nil {
			return ""
		}
		return fp
	default:
		return ""
	}
}

// maybeForward routes one solve request to the replica owning its
// fingerprint. It returns true when the peer's response was relayed and
// the request is done. Requests that already hopped once (HopHeader) are
// never re-forwarded — a stale or disagreeing peer list degrades to one
// extra hop, not a loop — and a transport failure falls back to a local
// solve, so a dead replica costs latency, not availability.
func (s *server) maybeForward(w http.ResponseWriter, r *http.Request, body []byte, instance any) bool {
	if s.ring == nil || !s.forward || r.Header.Get(cluster.HopHeader) != "" {
		return false
	}
	fp := fingerprintOf(instance)
	if fp == "" {
		return false
	}
	owner := s.ring.Owner(fp)
	if owner == s.ring.Self() {
		return false
	}
	resp, err := s.client.Forward(r.Context(), owner, r.URL.RequestURI(), r.Header.Get("Content-Type"), body)
	if err != nil {
		s.fwd.forwardErrors.Add(1)
		return false
	}
	defer resp.Body.Close()
	s.fwd.forwards.Add(1)
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	// The owner is named in a response header so clients (and the CI
	// smoke test) can observe routing without scraping two /metrics.
	w.Header().Set("X-Semimatch-Forwarded-To", owner)
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
	return true
}

// handlePeerCache answers GET /internal/cache/{key}: the entry under the
// (path-escaped) cache key from this replica's memory or disk tier, 404
// on a miss. Entries are served raw — integrity-checked but not
// re-verified — because the requesting replica runs cert.Verify on its
// own side before admission; nothing a replica says here is trusted.
func (s *server) handlePeerCache(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	key := strings.TrimPrefix(r.URL.Path, "/internal/cache/")
	if key == "" || strings.Contains(key, "/") {
		writeError(w, http.StatusBadRequest, "want /internal/cache/{key}")
		return
	}
	entry, ok := s.svc.PeerLookup(key)
	if !ok {
		writeError(w, http.StatusNotFound, "no entry")
		return
	}
	writeJSON(w, http.StatusOK, entry)
}
