package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"semimatch/internal/encode"
	"semimatch/internal/gen"
	"semimatch/internal/registry"
	"semimatch/internal/service"
)

const tinyHyper = `hypergraph 3 3 5
0 3 2 0 1
0 8 1 0
1 3 1 2
2 2 1 1
2 5 2 0 2
`

// isomorph of tinyHyper: configurations and processors listed in a
// different order.
const tinyHyperIso = `hypergraph 3 3 5
0 8 1 0
0 3 2 1 0
1 3 1 2
2 5 2 2 0
2 2 1 1
`

func startServer(t *testing.T, opts service.Options) (*httptest.Server, *service.Service) {
	t.Helper()
	svc := service.New(opts)
	ts := httptest.NewServer(newServer(svc, serverConfig{}))
	t.Cleanup(ts.Close)
	return ts, svc
}

func postSolve(t *testing.T, url, body string) (int, solveResponse, string) {
	t.Helper()
	resp, err := http.Post(url, "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /solve: %v", err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	var sr solveResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(buf.Bytes(), &sr); err != nil {
			t.Fatalf("bad solve response %q: %v", buf.String(), err)
		}
	}
	return resp.StatusCode, sr, buf.String()
}

func getStats(t *testing.T, base string) service.Stats {
	t.Helper()
	resp, err := http.Get(base + "/stats")
	if err != nil {
		t.Fatalf("GET /stats: %v", err)
	}
	defer resp.Body.Close()
	var st service.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decoding stats: %v", err)
	}
	return st
}

// hardHyperText is an instance whose branch and bound cannot finish
// within a short deadline (60 tasks, several configurations each).
func hardHyperText(t *testing.T) string {
	t.Helper()
	h, err := gen.Hypergraph(gen.HyperParams{
		Gen: gen.FewgManyg, N: 60, P: 16, Dv: 4, Dh: 3, G: 4,
		Weights: gen.Random, MaxW: 100,
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := encode.WriteHypergraph(&buf, h); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestSolveCacheHit: the second identical request is served from the
// cache — the hit counter increments and no second solve runs. A third,
// isomorphic request hits too.
func TestSolveCacheHit(t *testing.T) {
	ts, _ := startServer(t, service.Options{})
	code, r1, raw := postSolve(t, ts.URL+"/solve?alg=EVG", tinyHyper)
	if code != http.StatusOK {
		t.Fatalf("first solve: %d %s", code, raw)
	}
	if r1.Cached || r1.Kind != "hypergraph" || r1.Algorithm != "EVG" {
		t.Fatalf("first solve: %+v", r1)
	}
	code, r2, raw := postSolve(t, ts.URL+"/solve?alg=EVG", tinyHyper)
	if code != http.StatusOK {
		t.Fatalf("second solve: %d %s", code, raw)
	}
	if !r2.Cached {
		t.Fatalf("second identical request was not a cache hit: %+v", r2)
	}
	if r2.Makespan != r1.Makespan || r2.Fingerprint != r1.Fingerprint {
		t.Fatalf("cache hit disagrees: %+v vs %+v", r1, r2)
	}
	st := getStats(t, ts.URL)
	if st.Solves != 1 {
		t.Fatalf("solves = %d after two identical requests, want 1", st.Solves)
	}
	if st.CacheHits != 1 {
		t.Fatalf("cache_hits = %d, want 1", st.CacheHits)
	}

	// Isomorphic reordering: same fingerprint, still one solve.
	code, r3, raw := postSolve(t, ts.URL+"/solve?alg=EVG", tinyHyperIso)
	if code != http.StatusOK {
		t.Fatalf("isomorph solve: %d %s", code, raw)
	}
	if !r3.Cached || r3.Fingerprint != r1.Fingerprint || r3.Makespan != r1.Makespan {
		t.Fatalf("isomorph was not served from cache: %+v", r3)
	}
	if st := getStats(t, ts.URL); st.Solves != 1 {
		t.Fatalf("solves = %d after isomorph request, want 1", st.Solves)
	}
}

// TestSolveDeadlineTruncated: a deadline the branch and bound cannot
// meet yields 200 with the incumbent schedule flagged truncated.
func TestSolveDeadlineTruncated(t *testing.T) {
	ts, _ := startServer(t, service.Options{})
	code, r, raw := postSolve(t, ts.URL+"/solve?alg=bnb&deadline=50ms", hardHyperText(t))
	if code != http.StatusOK {
		t.Fatalf("deadline-limited solve: %d %s", code, raw)
	}
	if !r.Truncated {
		t.Fatalf("expected a truncated incumbent: %+v", r)
	}
	if len(r.Assignment) != 60 || r.Makespan <= 0 {
		t.Fatalf("incumbent looks wrong: makespan=%d len=%d", r.Makespan, len(r.Assignment))
	}
}

// TestSolveOverload: with a single admission slot held by a slow solve,
// the next request gets 429 and Retry-After.
func TestSolveOverload(t *testing.T) {
	ts, _ := startServer(t, service.Options{QueueDepth: 1, Workers: 1})
	hard := hardHyperText(t)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		code, r, raw := postSolve(t, ts.URL+"/solve?alg=bnb&deadline=1s", hard)
		if code != http.StatusOK || !r.Truncated {
			t.Errorf("slow request: %d %s", code, raw)
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for getStats(t, ts.URL).InFlight < 1 {
		if time.Now().After(deadline) {
			t.Fatal("slow solve never started")
		}
		time.Sleep(2 * time.Millisecond)
	}

	resp, err := http.Post(ts.URL+"/solve?alg=EVG", "text/plain", strings.NewReader(tinyHyper))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	wg.Wait()
	if st := getStats(t, ts.URL); st.Overloaded != 1 {
		t.Fatalf("overloaded = %d, want 1", st.Overloaded)
	}
}

// TestSolveHTTPInflightCap: the HTTP-level in-flight limit sheds excess
// /solve requests with 429 before any parsing happens.
func TestSolveHTTPInflightCap(t *testing.T) {
	svc := service.New(service.Options{})
	ts := httptest.NewServer(newServer(svc, serverConfig{maxInflight: 1}))
	t.Cleanup(ts.Close)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		code, _, raw := postSolve(t, ts.URL+"/solve?alg=bnb&deadline=1s", hardHyperText(t))
		if code != http.StatusOK {
			t.Errorf("slow request: %d %s", code, raw)
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for svc.Stats().InFlight < 1 {
		if time.Now().After(deadline) {
			t.Fatal("slow solve never started")
		}
		time.Sleep(2 * time.Millisecond)
	}
	resp, err := http.Post(ts.URL+"/solve", "text/plain", strings.NewReader(tinyHyper))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 from the HTTP in-flight cap", resp.StatusCode)
	}
	wg.Wait()
}

// TestSolveJSONInstance: the cmd/semisched JSON schema is accepted and
// the response carries per-task configuration indices.
func TestSolveJSONInstance(t *testing.T) {
	ts, _ := startServer(t, service.Options{})
	body := `{
	  "processors": ["cpu0", "cpu1", "gpu"],
	  "tasks": [
	    {"name": "render", "configs": [
	      {"procs": [0], "time": 8},
	      {"procs": [0, 2], "time": 3}
	    ]},
	    {"name": "encode", "configs": [{"procs": [1], "time": 6}]}
	  ]
	}`
	code, r, raw := postSolve(t, ts.URL+"/solve", body)
	if code != http.StatusOK {
		t.Fatalf("JSON solve: %d %s", code, raw)
	}
	if r.Kind != "hypergraph" || len(r.Configs) != 2 || len(r.Loads) != 3 {
		t.Fatalf("JSON solve response: %+v", r)
	}
	// Optimal choice: render on {cpu0,gpu} for 3, encode on cpu1 for 6.
	if r.Makespan != 6 || r.Configs[0] != 1 || r.Configs[1] != 0 {
		t.Fatalf("JSON solve picked the wrong schedule: %+v", r)
	}
}

// TestSolveBipartiteText: a bipartite instance routes to the SINGLEPROC
// catalog, and the auto policy proves unit optimality.
func TestSolveBipartiteText(t *testing.T) {
	ts, _ := startServer(t, service.Options{})
	body := "bipartite 3 2 unit\n0 0\n0 1\n1 0\n2 0\n2 1\n"
	code, r, raw := postSolve(t, ts.URL+"/solve", body)
	if code != http.StatusOK {
		t.Fatalf("bipartite solve: %d %s", code, raw)
	}
	if r.Kind != "bipartite" || r.Algorithm != "ExactUnit" || !r.Optimal {
		t.Fatalf("bipartite auto: %+v", r)
	}
	if r.Makespan != 2 { // 3 unit tasks on 2 processors
		t.Fatalf("makespan = %d, want 2", r.Makespan)
	}
}

func TestSolveBadRequests(t *testing.T) {
	ts, _ := startServer(t, service.Options{})
	cases := []struct {
		name, url, body string
		want            int
	}{
		{"empty body", "/solve", "", http.StatusBadRequest},
		{"garbage", "/solve", "not an instance", http.StatusBadRequest},
		{"unknown alg", "/solve?alg=nope", tinyHyper, http.StatusBadRequest},
		{"bad deadline", "/solve?deadline=-3x", tinyHyper, http.StatusBadRequest},
		{"wrong class alg", "/solve?alg=basic", tinyHyper, http.StatusBadRequest},
	}
	for _, c := range cases {
		code, _, raw := postSolve(t, ts.URL+c.url, c.body)
		if code != c.want {
			t.Errorf("%s: status %d (%s), want %d", c.name, code, raw, c.want)
		}
		var er errorResponse
		if err := json.Unmarshal([]byte(raw), &er); err != nil || er.Error == "" {
			t.Errorf("%s: error body %q", c.name, raw)
		}
	}
	resp, err := http.Get(ts.URL + "/solve")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /solve = %d, want 405", resp.StatusCode)
	}
}

// TestAlgorithmsEndpoint: GET /algorithms serves the registry catalog as
// NDJSON, one record per solver.
func TestAlgorithmsEndpoint(t *testing.T) {
	ts, _ := startServer(t, service.Options{})
	resp, err := http.Get(ts.URL + "/algorithms")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	n := 0
	for sc.Scan() {
		var rec registry.SolverRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("line %d: %v", n+1, err)
		}
		if rec.Name == "" || rec.Class == "" {
			t.Fatalf("line %d incomplete: %s", n+1, sc.Text())
		}
		n++
	}
	if n != len(registry.Solvers()) {
		t.Fatalf("%d records for %d solvers", n, len(registry.Solvers()))
	}
}

func TestHealthz(t *testing.T) {
	ts, _ := startServer(t, service.Options{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if got := strings.TrimSpace(buf.String()); got != "ok" {
		t.Fatalf("healthz body %q", got)
	}
	// /stats includes uptime alongside the service counters.
	resp2, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var raw map[string]any
	if err := json.NewDecoder(resp2.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"requests", "cache_hits", "uptime_s", "queue_depth"} {
		if _, ok := raw[key]; !ok {
			t.Errorf("stats missing %q: %v", key, raw)
		}
	}
}

// TestSolveCertificateFields: the response carries the proof-carrying
// result surface — lower bound, trust tier and optimality witness — and
// an optimal auto solve verifies above the heuristic tier.
func TestSolveCertificateFields(t *testing.T) {
	ts, _ := startServer(t, service.Options{})
	code, r, raw := postSolve(t, ts.URL+"/solve", tinyHyper)
	if code != http.StatusOK {
		t.Fatalf("solve: %d %s", code, raw)
	}
	if !r.Optimal || r.Makespan != 5 {
		t.Fatalf("auto solve: %+v", r)
	}
	if r.LowerBound != r.Makespan {
		t.Fatalf("optimal result lower_bound %d ≠ makespan %d", r.LowerBound, r.Makespan)
	}
	if r.Trust != "verified" && r.Trust != "attested" {
		t.Fatalf("optimal result trust %q, want a verified tier", r.Trust)
	}
	if r.Witness == "" || r.Witness == "none" {
		t.Fatalf("optimal result witness %q, want an optimality witness", r.Witness)
	}
	// The raw body exposes the documented field names.
	var fields map[string]any
	if err := json.Unmarshal([]byte(raw), &fields); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"lower_bound", "trust", "witness"} {
		if _, ok := fields[key]; !ok {
			t.Errorf("response missing %q: %s", key, raw)
		}
	}
}

// TestSolveDiskRestart: with -cache-dir, a result solved by one server
// process is served as a cache hit by a freshly started one — even for an
// isomorphic restatement of the instance — straight from the disk tier.
func TestSolveDiskRestart(t *testing.T) {
	dir := t.TempDir()
	ts1, _ := startServer(t, service.Options{CacheDir: dir})
	code, r1, raw := postSolve(t, ts1.URL+"/solve", tinyHyper)
	if code != http.StatusOK {
		t.Fatalf("first solve: %d %s", code, raw)
	}
	if r1.Cached || !r1.Optimal {
		t.Fatalf("first solve: %+v", r1)
	}
	if st := getStats(t, ts1.URL); st.DiskWrites != 1 {
		t.Fatalf("first server did not persist: %+v", st)
	}
	ts1.Close()

	ts2, _ := startServer(t, service.Options{CacheDir: dir})
	code, r2, raw := postSolve(t, ts2.URL+"/solve", tinyHyperIso)
	if code != http.StatusOK {
		t.Fatalf("restart solve: %d %s", code, raw)
	}
	if !r2.Cached {
		t.Fatalf("restarted server re-solved: %+v", r2)
	}
	if r2.Makespan != r1.Makespan || r2.Fingerprint != r1.Fingerprint || !r2.Optimal {
		t.Fatalf("disk-served result disagrees: %+v vs %+v", r1, r2)
	}
	if r2.Trust != "verified" && r2.Trust != "attested" {
		t.Fatalf("disk-served result trust %q", r2.Trust)
	}
	st := getStats(t, ts2.URL)
	if st.DiskHits != 1 || st.Solves != 0 {
		t.Fatalf("restart was not a disk hit: %+v", st)
	}
}
