package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"semimatch/internal/service"
	"semimatch/internal/session"
)

// Dynamic-session endpoints: POST /session opens a long-lived scheduling
// session, POST /session/{id}/events feeds it arrive/depart/reweigh
// events (one JSON event per line), and GET /session/{id}/events streams
// the re-solves' incumbent trajectories and per-event reports over SSE.
// Sessions are in-memory with a cap (-sessions) and idle eviction
// (-session-idle); their re-solves go through the service's admission
// control, so session traffic and /solve traffic share one capacity.

// defaultSessionBuf is the SSE subscriber buffer: pushes beyond it are
// dropped rather than stalling the session's event loop.
const defaultSessionBuf = 1024

// sessionManager owns the open sessions.
type sessionManager struct {
	svc   *service.Service
	cap   int
	idle  time.Duration
	trace bool

	mu       sync.Mutex
	sessions map[string]*liveSession
	sweeping bool
}

// liveSession is one open session plus its eviction bookkeeping.
type liveSession struct {
	id      string
	s       *session.Session
	multi   bool
	procs   int
	created time.Time
	// lastActive is unix nanos of the last event or subscription; streams
	// counts open SSE connections — a streamed session is never idle.
	lastActive atomic.Int64
	streams    atomic.Int32
}

func (ls *liveSession) touch() { ls.lastActive.Store(time.Now().UnixNano()) }

func newSessionManager(svc *service.Service, cap int, idle time.Duration, trace bool) *sessionManager {
	return &sessionManager{
		svc: svc, cap: cap, idle: idle, trace: trace,
		sessions: make(map[string]*liveSession),
	}
}

// scheduleSweep arms the idle-eviction timer; m.mu must be held. Only one
// timer is in flight, and none while no sessions exist.
func (m *sessionManager) scheduleSweep() {
	if m.sweeping || m.idle <= 0 || len(m.sessions) == 0 {
		return
	}
	m.sweeping = true
	interval := m.idle / 4
	if interval < 100*time.Millisecond {
		interval = 100 * time.Millisecond
	}
	time.AfterFunc(interval, m.sweep)
}

// sweep evicts sessions idle past the deadline (streaming ones excepted)
// and re-arms itself while sessions remain.
func (m *sessionManager) sweep() {
	m.mu.Lock()
	now := time.Now()
	var evicted []*liveSession
	for id, ls := range m.sessions {
		if ls.streams.Load() == 0 && now.Sub(time.Unix(0, ls.lastActive.Load())) >= m.idle {
			delete(m.sessions, id)
			evicted = append(evicted, ls)
		}
	}
	m.sweeping = false
	m.scheduleSweep()
	m.mu.Unlock()
	for _, ls := range evicted {
		ls.s.Close()
		m.svc.SessionClosed(true)
	}
}

func (m *sessionManager) get(id string) *liveSession {
	m.mu.Lock()
	defer m.mu.Unlock()
	ls := m.sessions[id]
	if ls != nil {
		ls.touch()
	}
	return ls
}

// sessionCreated is the POST /session response body.
type sessionCreated struct {
	ID    string `json:"id"`
	Procs int    `json:"procs"`
	Multi bool   `json:"multi"`
	// IdleTimeoutS is how long the session survives without events or an
	// open stream before eviction (0 = never evicted).
	IdleTimeoutS float64 `json:"idle_timeout_s"`
}

// handleSessionRoot serves POST /session (create) and GET /session
// (list open sessions).
func (s *server) handleSessionRoot(w http.ResponseWriter, r *http.Request) {
	m := s.sessions
	if m == nil {
		writeError(w, http.StatusNotFound, "sessions disabled (-sessions 0)")
		return
	}
	switch r.Method {
	case http.MethodGet:
		m.mu.Lock()
		list := make([]sessionCreated, 0, len(m.sessions))
		for id, ls := range m.sessions {
			list = append(list, sessionCreated{ID: id, Procs: ls.procs, Multi: ls.multi, IdleTimeoutS: m.idle.Seconds()})
		}
		m.mu.Unlock()
		writeJSON(w, http.StatusOK, struct {
			Sessions []sessionCreated `json:"sessions"`
		}{list})
	case http.MethodPost:
		s.handleSessionCreate(w, r)
	default:
		writeError(w, http.StatusMethodNotAllowed, "GET or POST only")
	}
}

// handleSessionCreate opens a session. The body is a session script
// header: {"procs":N,"multi":...,"lambda":...,"node_budget":...,
// "exact_task_limit":...,"compare_cold":...}.
func (s *server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	m := s.sessions
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.maxBody))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("reading body: %v", err))
		return
	}
	var hdr session.ScriptHeader
	if err := json.Unmarshal(body, &hdr); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad session config: %v", err))
		return
	}
	opts := hdr.Options()
	// One admission slot per re-solve: a session's solve runs alone, and
	// with one worker the engine's node accounting is deterministic, so
	// warm-vs-cold comparisons (compare_cold) measure pruning, not luck.
	opts.Workers = 1
	opts.ExactWorkers = 1
	opts.Trace = m.trace
	opts.Acquire = m.svc.AcquireSolveSlot
	sess, err := session.New(opts)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	ls := &liveSession{
		id: newRequestID(), s: sess,
		multi: opts.Multi, procs: opts.Procs, created: time.Now(),
	}
	ls.touch()
	m.mu.Lock()
	if m.cap > 0 && len(m.sessions) >= m.cap {
		m.mu.Unlock()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, fmt.Sprintf("session capacity (%d) reached", m.cap))
		return
	}
	m.sessions[ls.id] = ls
	m.scheduleSweep()
	m.mu.Unlock()
	m.svc.SessionOpened()
	writeJSON(w, http.StatusCreated, sessionCreated{
		ID: ls.id, Procs: opts.Procs, Multi: opts.Multi, IdleTimeoutS: m.idle.Seconds(),
	})
}

// handleSession routes /session/{id}[/events]: GET {id} snapshots, DELETE
// {id} closes, POST {id}/events applies events, GET {id}/events streams.
func (s *server) handleSession(w http.ResponseWriter, r *http.Request) {
	m := s.sessions
	if m == nil {
		writeError(w, http.StatusNotFound, "sessions disabled (-sessions 0)")
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, "/session/")
	id, sub, _ := strings.Cut(rest, "/")
	ls := m.get(id)
	if ls == nil {
		writeError(w, http.StatusNotFound, fmt.Sprintf("no session %q", id))
		return
	}
	switch {
	case sub == "" && r.Method == http.MethodGet:
		writeJSON(w, http.StatusOK, ls.s.Snapshot())
	case sub == "" && r.Method == http.MethodDelete:
		m.mu.Lock()
		_, open := m.sessions[id]
		delete(m.sessions, id)
		m.mu.Unlock()
		if open {
			ls.s.Close()
			m.svc.SessionClosed(false)
		}
		w.WriteHeader(http.StatusNoContent)
	case sub == "events" && r.Method == http.MethodPost:
		s.handleSessionEvents(w, r, ls)
	case sub == "events" && r.Method == http.MethodGet:
		s.handleSessionStream(w, r, ls)
	default:
		writeError(w, http.StatusNotFound, fmt.Sprintf("no route %s %s", r.Method, r.URL.Path))
	}
}

// eventsResponse is the POST /session/{id}/events body: one report per
// applied event, plus the error that stopped a partially-applied batch.
type eventsResponse struct {
	Reports []*session.SessionReport `json:"reports"`
	Error   string                   `json:"error,omitempty"`
}

// handleSessionEvents applies a batch of events: one JSON event per line
// (a single event is a one-line batch). Events apply in order; the first
// failure stops the batch and reports the events already applied.
func (s *server) handleSessionEvents(w http.ResponseWriter, r *http.Request, ls *liveSession) {
	m := s.sessions
	sc := bufio.NewScanner(http.MaxBytesReader(w, r.Body, s.maxBody))
	sc.Buffer(make([]byte, 0, 64*1024), int(s.maxBody))
	var resp eventsResponse
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var ev session.Event
		if err := json.Unmarshal(b, &ev); err != nil {
			resp.Error = fmt.Sprintf("event line %d: %v", line, err)
			writeJSON(w, http.StatusBadRequest, resp)
			return
		}
		rep, err := ls.s.Apply(r.Context(), ev)
		if err != nil {
			status := http.StatusBadRequest
			if errors.Is(err, session.ErrClosed) {
				status = http.StatusGone
			}
			resp.Error = fmt.Sprintf("event line %d: %v", line, err)
			writeJSON(w, status, resp)
			return
		}
		ls.touch()
		overloaded := rep.SolveStatus == "overloaded"
		m.svc.SessionEvent(rep.Adopted, overloaded)
		outcome := "patched"
		switch {
		case overloaded:
			outcome = "overloaded"
		case rep.Adopted:
			outcome = "adopted"
		}
		if rep.Report != nil {
			m.svc.RecordSessionSolve(ls.id, rep.Problem, rep.Report)
			m.svc.TraceSessionEvent(ls.id, rep.Op, rep.Seq, outcome, rep.Report.Trace)
		}
		resp.Reports = append(resp.Reports, rep)
	}
	if err := sc.Err(); err != nil {
		resp.Error = fmt.Sprintf("reading events: %v", err)
		writeJSON(w, http.StatusBadRequest, resp)
		return
	}
	if len(resp.Reports) == 0 {
		writeError(w, http.StatusBadRequest, "no events in body")
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// incumbentWire is the SSE form of a solve.Incumbent.
type incumbentWire struct {
	Seq        int64   `json:"seq"`
	Makespan   int64   `json:"makespan"`
	Assignment []int32 `json:"assignment"`
	Solver     string  `json:"solver,omitempty"`
	ElapsedS   float64 `json:"elapsed_s"`
	Final      bool    `json:"final"`
}

// handleSessionStream serves the SSE event stream: an initial "state"
// event with the current schedule, then "incumbent" events as re-solves
// improve and one "report" event per applied session event, until the
// client disconnects or the session closes (a final "closed" event).
func (s *server) handleSessionStream(w http.ResponseWriter, r *http.Request, ls *liveSession) {
	rc := http.NewResponseController(w)
	// SSE outlives the server's write timeout by design.
	rc.SetWriteDeadline(time.Time{})
	ch, cancel := ls.s.Subscribe(defaultSessionBuf)
	defer cancel()
	ls.streams.Add(1)
	defer func() { ls.streams.Add(-1); ls.touch() }()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	writeSSE(w, rc, "state", ls.s.Snapshot())

	for {
		select {
		case <-r.Context().Done():
			return
		case p, ok := <-ch:
			if !ok { // session closed or evicted
				writeSSE(w, rc, "closed", struct{}{})
				return
			}
			switch p.Kind {
			case "incumbent":
				inc := p.Incumbent
				if err := writeSSE(w, rc, "incumbent", incumbentWire{
					Seq: p.Seq, Makespan: inc.Makespan, Assignment: inc.Assignment,
					Solver: inc.Solver, ElapsedS: inc.Elapsed.Seconds(), Final: inc.Final,
				}); err != nil {
					return
				}
			case "report":
				if err := writeSSE(w, rc, "report", p.Report); err != nil {
					return
				}
			}
		}
	}
}

// writeSSE emits one server-sent event with a JSON data payload.
func writeSSE(w io.Writer, rc *http.ResponseController, event string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data); err != nil {
		return err
	}
	return rc.Flush()
}
