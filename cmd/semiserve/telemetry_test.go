package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	"semimatch/internal/service"
)

// metricFamilies is every family GET /metrics documents; the smoke test
// in CI greps for the same names.
var metricFamilies = []string{
	"semimatch_requests_total",
	"semimatch_cache_hits_total",
	"semimatch_cache_misses_total",
	"semimatch_cache_evictions_total",
	"semimatch_cache_entries",
	"semimatch_coalesced_total",
	"semimatch_solves_total",
	"semimatch_solve_errors_total",
	"semimatch_truncated_total",
	"semimatch_overloaded_total",
	"semimatch_verify_failures_total",
	"semimatch_disk_hits_total",
	"semimatch_disk_misses_total",
	"semimatch_disk_writes_total",
	"semimatch_disk_write_errors_total",
	"semimatch_disk_reaped_total",
	"semimatch_in_flight",
	"semimatch_search_nodes_total",
	"semimatch_search_nodes_per_second",
	"semimatch_ledger_errors_total",
	"semimatch_uptime_seconds",
	"semimatch_queue_wait_seconds",
	"semimatch_http_request_seconds",
}

// TestMetricsEndpoint scrapes GET /metrics after real traffic: every
// documented family is present and well-formed Prometheus text, histogram
// buckets are cumulative (monotone), and the request histogram counted
// the traffic.
func TestMetricsEndpoint(t *testing.T) {
	ts, _ := startServer(t, service.Options{})
	if code, _, raw := postSolve(t, ts.URL+"/solve?alg=EVG", tinyHyper); code != http.StatusOK {
		t.Fatalf("solve: %d %s", code, raw)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content-type = %q", ct)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	text := buf.String()

	for _, fam := range metricFamilies {
		if !strings.Contains(text, "# HELP "+fam+" ") || !strings.Contains(text, "# TYPE "+fam+" ") {
			t.Errorf("missing HELP/TYPE for %s", fam)
		}
	}

	// Every non-comment line is `name[{labels}] value`, value parseable.
	typed := map[string]string{}
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			typed[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("sample line without value: %q", line)
		}
		val := line[sp+1:]
		if val != "+Inf" && val != "-Inf" && val != "NaN" {
			if _, err := strconv.ParseFloat(val, 64); err != nil {
				t.Fatalf("unparseable sample %q: %v", line, err)
			}
		}
	}
	for fam, typ := range typed {
		switch typ {
		case "counter", "gauge", "histogram":
		default:
			t.Errorf("family %s has unknown type %q", fam, typ)
		}
	}

	// The request histogram observed the traffic and its buckets are
	// cumulative.
	if !bucketSawTraffic(t, text, "semimatch_http_request_seconds") {
		t.Error("semimatch_http_request_seconds_count is zero after requests")
	}
	if !bucketSawTraffic(t, text, "semimatch_queue_wait_seconds") {
		t.Error("semimatch_queue_wait_seconds_count is zero after a fresh solve")
	}
}

// bucketSawTraffic checks one histogram family's text: monotone
// cumulative buckets, the +Inf bucket equal to _count, and _count > 0.
func bucketSawTraffic(t *testing.T, text, fam string) bool {
	t.Helper()
	var prev uint64
	var last, count uint64
	var sawInf bool
	for _, line := range strings.Split(text, "\n") {
		switch {
		case strings.HasPrefix(line, fam+"_bucket{"):
			v, err := strconv.ParseUint(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
			if err != nil {
				t.Fatalf("bad bucket line %q: %v", line, err)
			}
			if v < prev {
				t.Errorf("%s buckets not cumulative: %q after %d", fam, line, prev)
			}
			prev, last = v, v
			if strings.Contains(line, `le="+Inf"`) {
				sawInf = true
			}
		case strings.HasPrefix(line, fam+"_count "):
			c, err := strconv.ParseUint(strings.Fields(line)[1], 10, 64)
			if err != nil {
				t.Fatalf("bad count line %q: %v", line, err)
			}
			count = c
		}
	}
	if !sawInf {
		t.Errorf("%s has no +Inf bucket", fam)
	}
	if last != count {
		t.Errorf("%s +Inf bucket %d ≠ count %d", fam, last, count)
	}
	return count > 0
}

// TestRequestIDAndAccessLog: every response carries X-Request-Id, and the
// access log line for a solve records the id, algorithm, fingerprint
// prefix, cache tier and solve status.
func TestRequestIDAndAccessLog(t *testing.T) {
	var mu sync.Mutex
	var logBuf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(syncWriter{&mu, &logBuf}, nil))
	svc := service.New(service.Options{})
	ts := httptest.NewServer(newServer(svc, serverConfig{logger: logger}))
	t.Cleanup(ts.Close)

	resp, err := http.Post(ts.URL+"/solve?alg=EVG", "text/plain", strings.NewReader(tinyHyper))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	id := resp.Header.Get("X-Request-Id")
	if len(id) != 16 {
		t.Fatalf("X-Request-Id = %q, want 16 hex chars", id)
	}
	// A second, distinct request gets a distinct id.
	resp2, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if id2 := resp2.Header.Get("X-Request-Id"); id2 == "" || id2 == id {
		t.Fatalf("second request id %q vs first %q", id2, id)
	}

	mu.Lock()
	logs := logBuf.String()
	mu.Unlock()
	for _, want := range []string{
		"id=" + id, "method=POST", "path=/solve", "status=200",
		"alg=EVG", "fp=", "cache=none", "solve_status=heuristic",
	} {
		if !strings.Contains(logs, want) {
			t.Errorf("access log missing %q:\n%s", want, logs)
		}
	}
}

// syncWriter serializes concurrent handler log writes for the test.
type syncWriter struct {
	mu *sync.Mutex
	w  *bytes.Buffer
}

func (s syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

// TestDebugSolvesEndpoint: GET /debug/solves returns well-formed JSON
// (an empty list on an idle server).
func TestDebugSolvesEndpoint(t *testing.T) {
	ts, _ := startServer(t, service.Options{})
	resp, err := http.Get(ts.URL + "/debug/solves")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/solves = %d", resp.StatusCode)
	}
	var body struct {
		Solves []service.LiveSolve `json:"solves"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if len(body.Solves) != 0 {
		t.Fatalf("idle server reports %d live solves", len(body.Solves))
	}
}

// TestPprofMount: -pprof mounts the index; without it /debug/pprof/ 404s.
func TestPprofMount(t *testing.T) {
	svc := service.New(service.Options{})
	ts := httptest.NewServer(newServer(svc, serverConfig{pprof: true}))
	t.Cleanup(ts.Close)
	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/pprof/ = %d with -pprof", resp.StatusCode)
	}

	ts2, _ := startServer(t, service.Options{})
	resp2, err := http.Get(ts2.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /debug/pprof/ = %d without -pprof, want 404", resp2.StatusCode)
	}
}

// TestStatsGauges: the fixed /stats now carries queue_len, in_flight and
// uptime_s from the service itself.
func TestStatsGauges(t *testing.T) {
	ts, _ := startServer(t, service.Options{})
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"queue_len", "in_flight", "uptime_s", "queue_depth", "workers"} {
		if _, ok := raw[key]; !ok {
			t.Errorf("stats missing %q: %v", raw, key)
		}
	}
	if up, _ := raw["uptime_s"].(float64); up <= 0 {
		t.Errorf("uptime_s = %v", raw["uptime_s"])
	}
}

// TestCacheTierField: the response's cache_tier distinguishes fresh
// ("none"), memory-hit and (via restart) disk-hit answers.
func TestCacheTierField(t *testing.T) {
	dir := t.TempDir()
	ts, _ := startServer(t, service.Options{CacheDir: dir})
	_, r1, _ := postSolve(t, ts.URL+"/solve", tinyHyper)
	if r1.CacheTier != "none" {
		t.Fatalf("fresh solve cache_tier = %q, want none", r1.CacheTier)
	}
	_, r2, _ := postSolve(t, ts.URL+"/solve", tinyHyper)
	if r2.CacheTier != "memory" {
		t.Fatalf("repeat cache_tier = %q, want memory", r2.CacheTier)
	}
	ts.Close()
	ts2, _ := startServer(t, service.Options{CacheDir: dir})
	_, r3, _ := postSolve(t, ts2.URL+"/solve", tinyHyper)
	if r3.CacheTier != "disk" {
		t.Fatalf("restart cache_tier = %q, want disk", r3.CacheTier)
	}
}
