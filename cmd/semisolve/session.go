package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"semimatch/internal/session"
)

// runSession replays a session script (a ScriptHeader line, then one JSON
// event per line — see internal/session.ReadScript) through a fresh
// dynamic session, printing one line per event and a closing summary.
// With -json each event's SessionReport is emitted as one JSON line
// instead. The exit path mirrors a live semiserve session: instant online
// patch, then a warm-started re-solve adopted only when it wins the
// migration-cost objective.
func runSession(path string, jsonOut bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	hdr, events, err := session.ReadScript(f)
	if err != nil {
		return err
	}
	opts := hdr.Options()
	s, err := session.New(opts)
	if err != nil {
		return err
	}
	defer s.Close()

	if !jsonOut {
		fmt.Printf("session: %d processors, %s, λ=%g, %d events\n",
			hdr.Procs, className(hdr.Multi), hdr.Lambda, len(events))
	}
	enc := json.NewEncoder(os.Stdout)
	start := time.Now()
	var warmNodes, coldNodes, migCost int64
	var migrations, adopted int
	var finalMakespan int64
	for i, ev := range events {
		rep, err := s.Apply(context.Background(), ev)
		if err != nil {
			return fmt.Errorf("event %d (%s): %w", i+1, ev.Op, err)
		}
		warmNodes += rep.Nodes
		coldNodes += rep.ColdNodes
		migrations += rep.Migrations
		migCost += rep.MigrationCost
		if rep.Adopted {
			adopted++
		}
		finalMakespan = rep.Makespan
		if jsonOut {
			if err := enc.Encode(rep); err != nil {
				return err
			}
			continue
		}
		line := fmt.Sprintf("#%-4d %-7s %-8s tasks=%-3d makespan=%d (patched %d)",
			rep.Seq, rep.Op, rep.TaskID, rep.Tasks, rep.Makespan, rep.PatchedMakespan)
		if rep.Adopted {
			line += fmt.Sprintf(" adopted[%s]", rep.Status)
			if rep.Migrations > 0 {
				line += fmt.Sprintf(" migrated=%d cost=%d", rep.Migrations, rep.MigrationCost)
			}
		}
		if rep.Nodes > 0 {
			line += fmt.Sprintf(" nodes=%d", rep.Nodes)
			if rep.ColdNodes > 0 {
				line += fmt.Sprintf("/%d cold", rep.ColdNodes)
			}
		}
		fmt.Println(line)
	}
	if !jsonOut {
		fmt.Printf("replayed %d events in %.3fs: final makespan %d, %d re-solves adopted, %d migrations (cost %d)\n",
			len(events), time.Since(start).Seconds(), finalMakespan, adopted, migrations, migCost)
		if coldNodes > 0 {
			fmt.Printf("warm starts: %d nodes vs %d cold (%.1f%% saved)\n",
				warmNodes, coldNodes, 100*(1-float64(warmNodes)/float64(coldNodes)))
		}
	}
	return nil
}

func className(multi bool) string {
	if multi {
		return "MULTIPROC"
	}
	return "SINGLEPROC"
}
