// Command semisolve reads an instance file (bipartite or hypergraph,
// auto-detected) and schedules it. Algorithms resolve through the solver
// registry: any name or alias printed by -list-algorithms works, and the
// class is picked from the detected instance kind.
//
// Usage:
//
//	semisolve -list-algorithms
//	semisolve -list-algorithms -json   # NDJSON SolverRecord per line
//	semisolve -alg evg instance.txt
//	semisolve -alg exact -show-loads sp.txt
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"semimatch/internal/bipartite"
	"semimatch/internal/core"
	"semimatch/internal/encode"
	"semimatch/internal/hypergraph"
	"semimatch/internal/refine"
	"semimatch/internal/registry"
)

func main() {
	alg := flag.String("alg", "evg", "algorithm name or alias (see -list-algorithms)")
	list := flag.Bool("list-algorithms", false, "print the solver catalog and exit")
	jsonOut := flag.Bool("json", false, "with -list-algorithms, emit the catalog as NDJSON (one record per solver)")
	showLoads := flag.Bool("show-loads", false, "print the per-processor loads")
	doRefine := flag.Bool("refine", false, "post-process hypergraph schedules with local search")
	flag.Parse()
	if *list {
		if *jsonOut {
			if err := registry.WriteCatalogNDJSON(os.Stdout); err != nil {
				fail(err)
			}
			return
		}
		fmt.Print(registry.FormatCatalog())
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: semisolve [-alg name] [-show-loads] [-list-algorithms] <instance-file>")
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	kind, err := encode.DetectKind(data)
	if err != nil {
		fail(err)
	}
	switch kind {
	case "bipartite":
		g, err := encode.ReadBipartite(bytes.NewReader(data))
		if err != nil {
			fail(err)
		}
		solveBipartite(g, *alg, *showLoads)
	case "hypergraph":
		h, err := encode.ReadHypergraph(bytes.NewReader(data))
		if err != nil {
			fail(err)
		}
		solveHyper(h, *alg, *showLoads, *doRefine)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "semisolve: %v\n", err)
	os.Exit(1)
}

func solveBipartite(g *bipartite.Graph, alg string, showLoads bool) {
	sol, err := registry.LookupClass(registry.SingleProc, alg)
	if err != nil {
		fail(err)
	}
	start := time.Now()
	a, err := sol.SolveSingle(context.Background(), g, registry.Options{})
	if err != nil {
		fail(err)
	}
	elapsed := time.Since(start)
	if err := core.ValidateAssignment(g, a); err != nil {
		fail(err)
	}
	fmt.Printf("instance: bipartite, %d tasks, %d processors, %d edges\n", g.NLeft, g.NRight, g.NumEdges())
	fmt.Printf("algorithm: %s (%.3fs)\n", sol.Name, elapsed.Seconds())
	fmt.Printf("makespan: %d%s\n", core.Makespan(g, a), optMark(sol.Optimal()))
	if showLoads {
		printLoads(core.Loads(g, a))
	}
}

func solveHyper(h *hypergraph.Hypergraph, alg string, showLoads, doRefine bool) {
	sol, err := registry.LookupClass(registry.MultiProc, alg)
	if err != nil {
		fail(err)
	}
	start := time.Now()
	a, err := sol.SolveHyper(context.Background(), h, registry.Options{})
	if err != nil {
		fail(err)
	}
	if doRefine {
		res := refine.Refine(h, a, refine.Options{})
		a = res.Assignment
		fmt.Printf("refinement: %d moves in %d rounds (%d → %d)\n",
			res.Moves, res.Rounds, res.Before, res.After)
	}
	elapsed := time.Since(start)
	if err := core.ValidateHyperAssignment(h, a); err != nil {
		fail(err)
	}
	lb := core.LowerBound(h)
	m := core.HyperMakespan(h, a)
	fmt.Printf("instance: hypergraph, %d tasks, %d processors, %d hyperedges, %d pins\n",
		h.NTasks, h.NProcs, h.NumEdges(), h.NumPins())
	fmt.Printf("algorithm: %s (%.3fs)\n", sol.Name, elapsed.Seconds())
	fmt.Printf("makespan: %d%s, lower bound: %d, ratio: %.3f\n",
		m, optMark(sol.Optimal()), lb, float64(m)/float64(lb))
	if showLoads {
		printLoads(core.HyperLoads(h, a))
	}
}

func optMark(optimal bool) string {
	if optimal {
		return " (optimal)"
	}
	return ""
}

func printLoads(loads []int64) {
	for p, l := range loads {
		fmt.Printf("P%-5d %d\n", p, l)
	}
}
