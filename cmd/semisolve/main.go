// Command semisolve reads an instance file (bipartite or hypergraph,
// auto-detected) and schedules it.
//
// Usage:
//
//	semisolve -alg evg instance.txt
//	semisolve -alg exact -show-loads sp.txt
//
// Bipartite algorithms: basic, sorted, double, expected, exact (unit
// graphs), harvey (unit graphs), bnb.
// Hypergraph algorithms: sgh, vgh, egh, evg, bnb.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"time"

	"semimatch/internal/bipartite"
	"semimatch/internal/core"
	"semimatch/internal/encode"
	"semimatch/internal/exact"
	"semimatch/internal/hypergraph"
	"semimatch/internal/refine"
)

func main() {
	alg := flag.String("alg", "evg", "algorithm (see doc comment)")
	showLoads := flag.Bool("show-loads", false, "print the per-processor loads")
	doRefine := flag.Bool("refine", false, "post-process hypergraph schedules with local search")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: semisolve [-alg name] [-show-loads] <instance-file>")
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	kind, err := encode.DetectKind(data)
	if err != nil {
		fail(err)
	}
	switch kind {
	case "bipartite":
		g, err := encode.ReadBipartite(bytes.NewReader(data))
		if err != nil {
			fail(err)
		}
		solveBipartite(g, *alg, *showLoads)
	case "hypergraph":
		h, err := encode.ReadHypergraph(bytes.NewReader(data))
		if err != nil {
			fail(err)
		}
		solveHyper(h, *alg, *showLoads, *doRefine)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "semisolve: %v\n", err)
	os.Exit(1)
}

func solveBipartite(g *bipartite.Graph, alg string, showLoads bool) {
	start := time.Now()
	var a core.Assignment
	var err error
	optimal := false
	switch alg {
	case "basic":
		a = core.BasicGreedy(g, core.GreedyOptions{})
	case "sorted":
		a = core.SortedGreedy(g, core.GreedyOptions{})
	case "double":
		a = core.DoubleSorted(g, core.GreedyOptions{})
	case "expected":
		a = core.ExpectedGreedy(g, core.GreedyOptions{})
	case "exact":
		a, _, err = core.ExactUnit(g, core.ExactOptions{})
		optimal = true
	case "harvey":
		a, err = core.HarveyOptimal(g)
		optimal = true
	case "bnb":
		a, _, err = exact.SolveSingleProc(g, exact.Options{})
		optimal = true
	default:
		fail(fmt.Errorf("unknown bipartite algorithm %q", alg))
	}
	if err != nil {
		fail(err)
	}
	elapsed := time.Since(start)
	if err := core.ValidateAssignment(g, a); err != nil {
		fail(err)
	}
	fmt.Printf("instance: bipartite, %d tasks, %d processors, %d edges\n", g.NLeft, g.NRight, g.NumEdges())
	fmt.Printf("algorithm: %s (%.3fs)\n", alg, elapsed.Seconds())
	fmt.Printf("makespan: %d%s\n", core.Makespan(g, a), optMark(optimal))
	if showLoads {
		printLoads(core.Loads(g, a))
	}
}

func solveHyper(h *hypergraph.Hypergraph, alg string, showLoads, doRefine bool) {
	start := time.Now()
	var a core.HyperAssignment
	var err error
	optimal := false
	switch alg {
	case "sgh":
		a = core.SortedGreedyHyp(h, core.HyperOptions{})
	case "vgh":
		a = core.VectorGreedyHyp(h, core.HyperOptions{})
	case "egh":
		a = core.ExpectedGreedyHyp(h, core.HyperOptions{})
	case "evg":
		a = core.ExpectedVectorGreedyHyp(h, core.HyperOptions{})
	case "bnb":
		a, _, err = exact.SolveMultiProc(h, exact.Options{})
		optimal = true
	default:
		fail(fmt.Errorf("unknown hypergraph algorithm %q", alg))
	}
	if err != nil {
		fail(err)
	}
	if doRefine {
		res := refine.Refine(h, a, refine.Options{})
		a = res.Assignment
		fmt.Printf("refinement: %d moves in %d rounds (%d → %d)\n",
			res.Moves, res.Rounds, res.Before, res.After)
	}
	elapsed := time.Since(start)
	if err := core.ValidateHyperAssignment(h, a); err != nil {
		fail(err)
	}
	lb := core.LowerBound(h)
	m := core.HyperMakespan(h, a)
	fmt.Printf("instance: hypergraph, %d tasks, %d processors, %d hyperedges, %d pins\n",
		h.NTasks, h.NProcs, h.NumEdges(), h.NumPins())
	fmt.Printf("algorithm: %s (%.3fs)\n", alg, elapsed.Seconds())
	fmt.Printf("makespan: %d%s, lower bound: %d, ratio: %.3f\n",
		m, optMark(optimal), lb, float64(m)/float64(lb))
	if showLoads {
		printLoads(core.HyperLoads(h, a))
	}
}

func optMark(optimal bool) string {
	if optimal {
		return " (optimal)"
	}
	return ""
}

func printLoads(loads []int64) {
	for p, l := range loads {
		fmt.Printf("P%-5d %d\n", p, l)
	}
}
