// Command semisolve reads an instance file (bipartite or hypergraph,
// auto-detected) and schedules it through the unified solve API: the
// decoded instance becomes a solve.Problem, and one Run answers both
// encodings. By default the auto policy runs (heuristic race, then an
// exact attempt when the instance is small enough); -alg names any
// registry solver instead, resolved in the detected instance's class.
//
// Usage:
//
//	semisolve -list-algorithms
//	semisolve -list-algorithms -json   # NDJSON SolverRecord per line
//	semisolve instance.txt             # auto policy
//	semisolve -alg evg instance.txt
//	semisolve -alg bnb-par -progress hard.txt   # watch incumbents tighten
//	semisolve -trace spans.ndjson instance.txt  # record the solve's span tree
//	semisolve -trace - instance.txt    # span tree to stderr, NDJSON to stdout
//	semisolve -verify instance.txt     # re-check the result's certificate
//	semisolve -fingerprint instance.txt   # canonical fingerprint, no solve
//	semisolve -session script.ndjson   # replay a dynamic-session event script
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"

	"semimatch/internal/core"
	"semimatch/internal/encode"
	"semimatch/internal/registry"
	"semimatch/internal/solve"
	"semimatch/internal/telemetry"
)

func main() {
	alg := flag.String("alg", "", "algorithm name or alias (see -list-algorithms); empty runs the auto policy")
	list := flag.Bool("list-algorithms", false, "print the solver catalog and exit")
	jsonOut := flag.Bool("json", false, "with -list-algorithms, emit the catalog as NDJSON (one record per solver)")
	showLoads := flag.Bool("show-loads", false, "print the per-processor loads")
	doRefine := flag.Bool("refine", false, "post-process hypergraph schedules with local search")
	progress := flag.Bool("progress", false, "print incumbent improvements and periodic search-progress snapshots to stderr while the solve runs")
	tracePath := flag.String("trace", "", "record a solve trace and write it as NDJSON spans to this file (\"-\" = stdout, after the summary)")
	doVerify := flag.Bool("verify", false, "independently verify the result's certificate and print the trust tier")
	fingerprint := flag.Bool("fingerprint", false, "print the instance's canonical fingerprint and exit without solving")
	sessionPath := flag.String("session", "", "replay a dynamic-session event script (header line + one JSON event per line) and print per-event reports; -json emits them as NDJSON")
	flag.Parse()
	if *list {
		if *jsonOut {
			if err := registry.WriteCatalogNDJSON(os.Stdout); err != nil {
				fail(err)
			}
			return
		}
		fmt.Print(registry.FormatCatalog())
		return
	}
	if *sessionPath != "" {
		if err := runSession(*sessionPath, *jsonOut); err != nil {
			fail(err)
		}
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: semisolve [-alg name] [-progress] [-verify] [-fingerprint] [-show-loads] [-session script] [-list-algorithms] <instance-file>")
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	problem, err := readProblem(data)
	if err != nil {
		fail(err)
	}
	if *fingerprint {
		fp, err := problem.Fingerprint()
		if err != nil {
			fail(err)
		}
		fmt.Println(fp)
		return
	}

	var opts []solve.Option
	if *alg != "" {
		opts = append(opts, solve.WithAlgorithm(*alg))
	}
	if *doRefine {
		opts = append(opts, solve.WithRefine())
	}
	if *progress {
		opts = append(opts, solve.WithObserver(func(inc solve.Incumbent) {
			mark := ""
			if inc.Final {
				mark = " (final)"
			}
			fmt.Fprintf(os.Stderr, "progress: makespan %d by %s after %.3fs%s\n",
				inc.Makespan, inc.Solver, inc.Elapsed.Seconds(), mark)
		}))
		// Periodic search introspection from the exact engine: node
		// throughput and the incumbent/bound gap, at the engine's default
		// snapshot interval.
		opts = append(opts, solve.WithProgress(func(p telemetry.SearchProgress) {
			gap := ""
			if p.Gap >= 0 {
				gap = fmt.Sprintf(", gap %.1f%%", p.Gap*100)
			}
			fmt.Fprintf(os.Stderr, "search: %d nodes (%.0f/s), incumbent %d, bound %d%s\n",
				p.Nodes, p.NodesPerSec, p.Incumbent, p.Bound, gap)
		}))
	}
	if *tracePath != "" {
		opts = append(opts, solve.WithTrace())
	}

	if *doVerify {
		opts = append(opts, solve.WithVerify())
	}

	rep, err := solve.Run(context.Background(), problem, opts...)
	verifyErr := err
	if err != nil && !(rep != nil && errors.Is(err, solve.ErrVerifyFailed)) {
		// A verification failure still carries the (downgraded) report;
		// print it below and exit nonzero at the end. Anything else is
		// fatal as before.
		fail(err)
	}
	if err := validate(problem, rep.Assignment); err != nil {
		fail(err)
	}

	fmt.Println("instance:", describe(problem))
	fmt.Printf("algorithm: %s (%.3fs)\n", rep.Solver, rep.Elapsed.Seconds())
	fmt.Printf("makespan: %d (%s), lower bound: %d, ratio: %.3f\n",
		rep.Makespan, rep.Status, rep.LowerBound, ratio(rep.Makespan, rep.LowerBound))
	if *doVerify {
		if verifyErr != nil {
			fmt.Printf("certificate: REJECTED: %v\n", verifyErr)
		} else if c := rep.Certificate; c != nil {
			fmt.Printf("certificate: %s (witness: %s, fingerprint %.12s…)\n",
				rep.Trust, c.Witness.Kind, c.Fingerprint)
		}
	}
	if *showLoads {
		for p, l := range rep.Loads {
			fmt.Printf("P%-5d %d\n", p, l)
		}
	}
	if *tracePath != "" {
		if err := writeTrace(*tracePath, rep.Trace); err != nil {
			fail(err)
		}
	}
	if verifyErr != nil {
		os.Exit(1)
	}
}

// writeTrace emits the solve's span tree: the human-readable listing to
// stderr, the NDJSON form to the named file (or stdout for "-").
func writeTrace(path string, tr *telemetry.Trace) error {
	if tr == nil {
		return errors.New("no trace was recorded")
	}
	fmt.Fprint(os.Stderr, tr.Format())
	if path == "-" {
		return tr.WriteNDJSON(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteNDJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "semisolve: %v\n", err)
	os.Exit(1)
}

// readProblem decodes either text encoding into a solve.Problem.
func readProblem(data []byte) (solve.Problem, error) {
	kind, err := encode.DetectKind(data)
	if err != nil {
		return solve.Problem{}, err
	}
	if kind == "bipartite" {
		g, err := encode.ReadBipartite(bytes.NewReader(data))
		if err != nil {
			return solve.Problem{}, err
		}
		return solve.Bipartite(g), nil
	}
	h, err := encode.ReadHypergraph(bytes.NewReader(data))
	if err != nil {
		return solve.Problem{}, err
	}
	return solve.Hyper(h), nil
}

func describe(p solve.Problem) string {
	if h := p.Hypergraph(); h != nil {
		return fmt.Sprintf("hypergraph, %d tasks, %d processors, %d hyperedges, %d pins",
			h.NTasks, h.NProcs, h.NumEdges(), h.NumPins())
	}
	g := p.Graph()
	return fmt.Sprintf("bipartite, %d tasks, %d processors, %d edges", g.NLeft, g.NRight, g.NumEdges())
}

func validate(p solve.Problem, a []int32) error {
	if h := p.Hypergraph(); h != nil {
		return core.ValidateHyperAssignment(h, core.HyperAssignment(a))
	}
	return core.ValidateAssignment(p.Graph(), core.Assignment(a))
}

func ratio(m, lb int64) float64 {
	if lb <= 0 {
		return 1
	}
	return float64(m) / float64(lb)
}
