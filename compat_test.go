package semimatch_test

// The API-compatibility golden suite of the Problem → Run → Report
// redesign: every pre-redesign public entry point must keep compiling,
// keep working, and produce the same makespans as the unified Run on
// seeded instances. If an intentional API change breaks this suite,
// update it together with docs/api-surface.txt (the CI surface guard).

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"semimatch"
)

func seededGraph(t *testing.T, seed int64) *semimatch.Graph {
	t.Helper()
	g, err := semimatch.GenerateBipartite(semimatch.FewgManyg, 40, 8, 4, 3, seed)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func seededWeightedGraph(seed int64, nTasks, nProcs int) *semimatch.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := semimatch.NewGraphBuilder(nTasks, nProcs)
	for task := 0; task < nTasks; task++ {
		d := 1 + rng.Intn(3)
		perm := rng.Perm(nProcs)
		for j := 0; j < d && j < nProcs; j++ {
			b.AddWeightedEdge(task, perm[j], 1+rng.Int63n(9))
		}
	}
	return b.MustBuild()
}

func seededHyper(t *testing.T, seed int64, n int) *semimatch.Hypergraph {
	t.Helper()
	h, err := semimatch.GenerateHypergraph(semimatch.HyperParams{
		Gen: semimatch.FewgManyg, N: n, P: 6, Dv: 3, Dh: 2, G: 3,
		Weights: semimatch.Random, MaxW: 9,
	}, seed)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// runMakespan solves p through the new entry point with one named
// algorithm and returns the reported makespan.
func runMakespan(t *testing.T, p semimatch.Problem, alg string, extra ...semimatch.Option) int64 {
	t.Helper()
	rep, err := semimatch.Run(context.Background(), p, append([]semimatch.Option{semimatch.WithAlgorithm(alg)}, extra...)...)
	if err != nil {
		t.Fatalf("Run(%s): %v", alg, err)
	}
	return rep.Makespan
}

// TestCompatSingleProcHeuristics: the flat heuristic entry points and
// their Run(WithAlgorithm) counterparts agree on every seed.
func TestCompatSingleProcHeuristics(t *testing.T) {
	type entry struct {
		name string
		fn   func(*semimatch.Graph, semimatch.GreedyOptions) semimatch.Assignment
	}
	entries := []entry{
		{"basic", semimatch.BasicGreedy},
		{"sorted", semimatch.SortedGreedy},
		{"double", semimatch.DoubleSorted},
		{"expected", semimatch.ExpectedGreedy},
	}
	for seed := int64(0); seed < 3; seed++ {
		g := seededGraph(t, seed)
		p := semimatch.GraphProblem(g)
		for _, e := range entries {
			old := semimatch.Makespan(g, e.fn(g, semimatch.GreedyOptions{}))
			if got := runMakespan(t, p, e.name); got != old {
				t.Fatalf("seed %d %s: flat %d, Run %d", seed, e.name, old, got)
			}
		}
		if old := semimatch.Makespan(g, semimatch.LPTGreedy(g)); old != runMakespan(t, p, "LPT") {
			t.Fatalf("seed %d LPT mismatch", seed)
		}
		if a, _, err := semimatch.OnlineReplay(g, nil); err != nil {
			t.Fatal(err)
		} else if old := semimatch.Makespan(g, a); old != runMakespan(t, p, "OnlineGreedy") {
			t.Fatalf("seed %d OnlineGreedy mismatch", seed)
		}
	}
}

// TestCompatSingleProcExact: ExactUnit, Harvey and the branch-and-bound
// pair agree with each other and with Run on unit instances.
func TestCompatSingleProcExact(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		g := seededGraph(t, seed)
		p := semimatch.GraphProblem(g)
		_, opt, err := semimatch.ExactUnit(g, semimatch.ExactOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if got := runMakespan(t, p, "ExactUnit"); got != opt {
			t.Fatalf("seed %d ExactUnit: flat %d, Run %d", seed, opt, got)
		}
		if got := runMakespan(t, p, "Harvey"); got != opt {
			t.Fatalf("seed %d Harvey: %d, want %d", seed, got, opt)
		}

		// Weighted branch and bound, sequential and parallel, old and new.
		w := seededWeightedGraph(seed, 12, 4)
		pw := semimatch.GraphProblem(w)
		_, m1, err := semimatch.SolveSingleProc(w, semimatch.BnBOptions{})
		if err != nil {
			t.Fatal(err)
		}
		_, m2, err := semimatch.SolveSingleProcPar(w, semimatch.BnBOptions{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		if m1 != m2 {
			t.Fatalf("seed %d: sequential %d vs parallel %d", seed, m1, m2)
		}
		if got := runMakespan(t, pw, "BnB-SP"); got != m1 {
			t.Fatalf("seed %d BnB-SP: flat %d, Run %d", seed, m1, got)
		}
		if got := runMakespan(t, pw, "bnb-par", semimatch.WithWorkers(2)); got != m1 {
			t.Fatalf("seed %d BnB-SP-Par via Run: want %d", seed, m1)
		}
	}
}

// TestCompatMultiProc: the flat hypergraph heuristics, the exact pair
// and the exact-arithmetic ablations agree with Run.
func TestCompatMultiProc(t *testing.T) {
	type entry struct {
		name string
		fn   func(*semimatch.Hypergraph, semimatch.HyperOptions) semimatch.HyperAssignment
	}
	entries := []entry{
		{"SGH", semimatch.SortedGreedyHyp},
		{"VGH", semimatch.VectorGreedyHyp},
		{"EGH", semimatch.ExpectedGreedyHyp},
		{"EVG", semimatch.ExpectedVectorGreedyHyp},
	}
	for seed := int64(0); seed < 3; seed++ {
		h := seededHyper(t, seed, 40)
		p := semimatch.HypergraphProblem(h)
		for _, e := range entries {
			old := semimatch.HyperMakespan(h, e.fn(h, semimatch.HyperOptions{}))
			if got := runMakespan(t, p, e.name); got != old {
				t.Fatalf("seed %d %s: flat %d, Run %d", seed, e.name, old, got)
			}
		}
		if a, err := semimatch.ExpectedGreedyHypExact(h, semimatch.HyperOptions{}); err != nil {
			t.Fatal(err)
		} else if old := semimatch.HyperMakespan(h, a); old != runMakespan(t, p, "EGH-X") {
			t.Fatalf("seed %d EGH-X mismatch", seed)
		}

		small := seededHyper(t, seed+10, 12)
		ps := semimatch.HypergraphProblem(small)
		_, m1, err := semimatch.SolveMultiProc(small, semimatch.BnBOptions{})
		if err != nil {
			t.Fatal(err)
		}
		_, m2, err := semimatch.SolveMultiProcPar(small, semimatch.BnBOptions{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		if m1 != m2 {
			t.Fatalf("seed %d: sequential %d vs parallel %d", seed, m1, m2)
		}
		if got := runMakespan(t, ps, "BnB-MP"); got != m1 {
			t.Fatalf("seed %d BnB-MP: flat %d, Run %d", seed, m1, got)
		}
	}
}

// TestCompatPortfolio: the flat Portfolio and Run's auto policy with the
// exact stage disabled are the same race, same winner, same makespan.
func TestCompatPortfolio(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		h := seededHyper(t, seed, 30)
		res, err := semimatch.Portfolio(h, semimatch.PortfolioOptions{Refine: true})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := semimatch.Run(context.Background(), semimatch.HypergraphProblem(h),
			semimatch.WithRefine(), semimatch.WithExactLimit(-1))
		if err != nil {
			t.Fatal(err)
		}
		if rep.Makespan != res.Makespan || rep.Solver != res.Winner {
			t.Fatalf("seed %d: Portfolio (%d, %s) vs Run (%d, %s)",
				seed, res.Makespan, res.Winner, rep.Makespan, rep.Solver)
		}
	}
}

// TestCompatSolveBatch: the deprecated hypergraph-only SolveBatch and the
// class-generic SolveProblems report identical makespans, sources and
// optimality on the same instances.
func TestCompatSolveBatch(t *testing.T) {
	var instances []*semimatch.Hypergraph
	var problems []semimatch.Problem
	for seed := int64(0); seed < 8; seed++ {
		h := seededHyper(t, seed+20, 8+int(seed))
		instances = append(instances, h)
		problems = append(problems, semimatch.HypergraphProblem(h))
	}
	old, err := semimatch.SolveBatch(context.Background(), instances, semimatch.BatchOptions{Refine: true})
	if err != nil {
		t.Fatal(err)
	}
	outs, err := semimatch.SolveProblems(context.Background(), problems, semimatch.BatchOptions{Refine: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range old {
		if old[i].Err != nil || outs[i].Err != nil {
			t.Fatalf("instance %d: %v / %v", i, old[i].Err, outs[i].Err)
		}
		rep := outs[i].Report
		if old[i].Makespan != rep.Makespan || old[i].Optimal != rep.Optimal() {
			t.Fatalf("instance %d: SolveBatch (%d, %v) vs SolveProblems (%d, %v)",
				i, old[i].Makespan, old[i].Optimal, rep.Makespan, rep.Optimal())
		}
	}
}

// TestCompatSchedFrontEnd: the scheduling front end still solves through
// the registry and agrees with Run on its hypergraph form.
func TestCompatSchedFrontEnd(t *testing.T) {
	in := semimatch.NewInstance("p0", "p1", "p2")
	in.AddTask("a",
		semimatch.Config{Procs: []int{0}, Time: 6},
		semimatch.Config{Procs: []int{1, 2}, Time: 3})
	in.AddTask("b", semimatch.Config{Procs: []int{1}, Time: 4})
	in.AddTask("c", semimatch.Config{Procs: []int{0, 2}, Time: 2})
	s, err := semimatch.Solve(in, semimatch.ExactSchedule)
	if err != nil {
		t.Fatal(err)
	}
	h, err := in.Hypergraph()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := semimatch.Run(context.Background(), semimatch.HypergraphProblem(h))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status != semimatch.StatusOptimal || rep.Makespan != s.Makespan {
		t.Fatalf("sched %d vs Run %d (%v)", s.Makespan, rep.Makespan, rep.Status)
	}
}

// TestCompatServiceAndFingerprint: the service path and Problem
// fingerprints stay aligned with the flat API.
func TestCompatServiceAndFingerprint(t *testing.T) {
	h := seededHyper(t, 33, 10)
	fp1, err := semimatch.Fingerprint(h)
	if err != nil {
		t.Fatal(err)
	}
	fp2, err := semimatch.HypergraphProblem(h).Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fp1 != fp2 {
		t.Fatalf("Fingerprint %s vs Problem.Fingerprint %s", fp1, fp2)
	}

	svc := semimatch.NewService(semimatch.ServiceOptions{})
	res, err := svc.Solve(context.Background(), h, "EVG")
	if err != nil {
		t.Fatal(err)
	}
	want := semimatch.HyperMakespan(h, semimatch.ExpectedVectorGreedyHyp(h, semimatch.HyperOptions{}))
	if res.Makespan != want {
		t.Fatalf("service EVG %d, flat EVG %d", res.Makespan, want)
	}
}

// TestCompatSymbolLedger pins the rest of the pre-redesign surface at
// compile time: if a future change drops or retypes one of these
// symbols, this file stops compiling (and the CI API-surface guard
// flags the doc diff).
func TestCompatSymbolLedger(t *testing.T) {
	var (
		_ semimatch.Solver           //nolint
		_ semimatch.SolverOptions    //nolint
		_ semimatch.SolverClass      //nolint
		_ semimatch.SolverKind       //nolint
		_ semimatch.SolverCost       //nolint
		_ semimatch.Graph            //nolint
		_ semimatch.GraphBuilder     //nolint
		_ semimatch.Hypergraph       //nolint
		_ semimatch.Assignment       //nolint
		_ semimatch.HyperAssignment  //nolint
		_ semimatch.GreedyOptions    //nolint
		_ semimatch.HyperOptions     //nolint
		_ semimatch.ExactOptions     //nolint
		_ semimatch.RefineOptions    //nolint
		_ semimatch.RefineResult     //nolint
		_ semimatch.PortfolioOptions //nolint
		_ semimatch.PortfolioResult  //nolint
		_ semimatch.OnlineScheduler  //nolint
		_ semimatch.BatchOptions     //nolint
		_ semimatch.BatchRunner      //nolint
		_ semimatch.BnBOptions       //nolint
		_ semimatch.BnBStats         //nolint
		_ semimatch.Generator        //nolint
		_ semimatch.WeightScheme     //nolint
		_ semimatch.HyperParams      //nolint
		_ semimatch.X3C              //nolint
		_ semimatch.Config           //nolint
		_ semimatch.Task             //nolint
		_ semimatch.Instance         //nolint
		_ semimatch.Schedule         //nolint
		_ semimatch.Timeline         //nolint
		_ semimatch.Algorithm        //nolint
		_ semimatch.Service          //nolint
		_ semimatch.ServiceOptions   //nolint
		_ semimatch.ServiceResult    //nolint
		_ semimatch.ServiceStats     //nolint
		_ semimatch.Certificate      //nolint
		_ semimatch.CertWitness      //nolint
		_ semimatch.WitnessKind      //nolint
		_ semimatch.TrustTier        //nolint
	)
	var _ = []any{
		semimatch.Solvers, semimatch.LookupSolver, semimatch.LookupClassSolver,
		semimatch.NewGraphBuilder, semimatch.NewHypergraphBuilder,
		semimatch.LowerBoundSingle, semimatch.LowerBound,
		semimatch.ExactUnit, semimatch.HarveyOptimal,
		semimatch.Refine, semimatch.RefineCtx,
		semimatch.Portfolio, semimatch.PortfolioCtx,
		semimatch.NewOnlineScheduler, semimatch.OnlineReplay, semimatch.OnlineCompetitiveRatio,
		semimatch.Loads, semimatch.Makespan, semimatch.ValidateAssignment,
		semimatch.HyperLoads, semimatch.HyperMakespan, semimatch.ValidateHyperAssignment,
		semimatch.SolveSingleProc, semimatch.SolveMultiProc,
		semimatch.SolveSingleProcCtx, semimatch.SolveMultiProcCtx,
		semimatch.SolveSingleProcPar, semimatch.SolveMultiProcPar,
		semimatch.SolveSingleProcParCtx, semimatch.SolveMultiProcParCtx,
		semimatch.NewBatchRunner, semimatch.SolveBatch, semimatch.SolveProblems,
		semimatch.GenerateBipartite, semimatch.GenerateHypergraph,
		semimatch.Fig1, semimatch.Chain, semimatch.ChainPlus, semimatch.ExpectedTrap,
		semimatch.NewInstance, semimatch.Solve, semimatch.SolveByName,
		semimatch.Fingerprint, semimatch.NewService,
		semimatch.Verify, semimatch.CertBounds, semimatch.WithVerify,
		semimatch.WriteGraph, semimatch.ReadGraph,
		semimatch.WriteHypergraph, semimatch.ReadHypergraph,
		semimatch.ErrLimit, semimatch.ErrCancelled,
		semimatch.ErrServiceOverloaded, semimatch.ErrUnknownAlgorithm,
		semimatch.ErrVerifyFailed,
	}
	// Constants of the pre-redesign surface.
	_ = []any{
		semimatch.ClassSingleProc, semimatch.ClassMultiProc,
		semimatch.KindHeuristic, semimatch.KindExact, semimatch.KindOnline,
		semimatch.CostNearLinear, semimatch.CostPolynomial, semimatch.CostExponential,
		semimatch.SearchIncremental, semimatch.SearchBisection,
		semimatch.TestCapacitated, semimatch.TestReplicate, semimatch.TestReplicateHK,
		semimatch.HiLo, semimatch.FewgManyg, semimatch.Unit, semimatch.Related, semimatch.Random,
		semimatch.SGH, semimatch.EGH, semimatch.VGH,
		semimatch.ExpectedVectorGreedy, semimatch.ExactSchedule,
		semimatch.WitnessNone, semimatch.WitnessAverageLoad,
		semimatch.WitnessMaxElement, semimatch.WitnessExhaustive,
		semimatch.WitnessPacking, semimatch.WitnessMatching,
		semimatch.TierHeuristic, semimatch.TierAttested, semimatch.TierVerified,
	}
	_ = time.Second // keep the import for future timing assertions
}

// TestCompatCertificates: the proof-carrying surface exposed at the
// root — every Run report carries a certificate Verify independently
// accepts, WithVerify grades the trust tier, and a forged certificate
// is rejected, never believed.
func TestCompatCertificates(t *testing.T) {
	h := seededHyper(t, 23, 9)
	rep, err := semimatch.Run(context.Background(), semimatch.HypergraphProblem(h),
		semimatch.WithVerify())
	if err != nil {
		t.Fatal(err)
	}
	c := rep.Certificate
	if c == nil {
		t.Fatal("Run report carries no certificate")
	}
	tier, err := semimatch.Verify(h, c)
	if err != nil {
		t.Fatalf("certificate rejected: %v", err)
	}
	if tier != rep.Trust {
		t.Fatalf("Verify tier %s, report trust %s", tier, rep.Trust)
	}
	if rep.Status == semimatch.StatusOptimal {
		if c.Witness.Kind == semimatch.WitnessNone || tier < semimatch.TierAttested {
			t.Fatalf("optimal report: witness %s, tier %s", c.Witness.Kind, tier)
		}
	}
	avg, maxElem, err := semimatch.CertBounds(h)
	if err != nil {
		t.Fatal(err)
	}
	if avg > rep.Makespan || maxElem > rep.Makespan {
		t.Fatalf("class bounds (%d, %d) exceed makespan %d", avg, maxElem, rep.Makespan)
	}

	forged := *c
	forged.Makespan--
	if _, err := semimatch.Verify(h, &forged); err == nil {
		t.Fatal("forged certificate accepted")
	}
}
