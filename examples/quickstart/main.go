// Quickstart: build a small MULTIPROC instance through the public API,
// schedule it with every algorithm, and print the resulting Gantt chart.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"semimatch"
)

func main() {
	// Three processors: two CPUs and one GPU. Tasks may run sequentially
	// on one CPU, or split across CPU+GPU for a shorter per-processor
	// time (the paper's "parallel tasks with resource constraints").
	in := semimatch.NewInstance("cpu0", "cpu1", "gpu")
	in.AddTask("render",
		semimatch.Config{Procs: []int{0}, Time: 8},
		semimatch.Config{Procs: []int{1}, Time: 8},
		semimatch.Config{Procs: []int{0, 2}, Time: 3},
	)
	in.AddTask("encode",
		semimatch.Config{Procs: []int{1}, Time: 6},
		semimatch.Config{Procs: []int{1, 2}, Time: 2},
	)
	in.AddTask("archive",
		semimatch.Config{Procs: []int{0}, Time: 4},
		semimatch.Config{Procs: []int{1}, Time: 4},
	)
	in.AddTask("index",
		semimatch.Config{Procs: []int{0, 1}, Time: 2},
		semimatch.Config{Procs: []int{2}, Time: 5},
	)

	for _, alg := range []semimatch.Algorithm{
		semimatch.SGH, semimatch.EGH, semimatch.VGH,
		semimatch.ExpectedVectorGreedy, semimatch.ExactSchedule,
	} {
		s, err := semimatch.Solve(in, alg)
		if err != nil {
			log.Fatalf("%v: %v", alg, err)
		}
		fmt.Printf("%-6s makespan %d", alg, s.Makespan)
		if s.Optimal {
			fmt.Print("  (proven optimal)")
		}
		fmt.Println()
	}

	// Show the best schedule as a timeline.
	s, err := semimatch.Solve(in, semimatch.ExactSchedule)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	tl := s.Simulate()
	if err := tl.Validate(s); err != nil {
		log.Fatal(err)
	}
	tl.Gantt(os.Stdout, s)
	fmt.Println("\nbottlenecks:", s.LoadReport()[0])
}
