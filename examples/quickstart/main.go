// Quickstart: build a small MULTIPROC instance through the public API,
// solve it with the unified Problem → Run → Report entry point, compare
// every named algorithm, and print the resulting Gantt chart.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"semimatch"
)

func main() {
	// Three processors: two CPUs and one GPU. Tasks may run sequentially
	// on one CPU, or split across CPU+GPU for a shorter per-processor
	// time (the paper's "parallel tasks with resource constraints").
	in := semimatch.NewInstance("cpu0", "cpu1", "gpu")
	in.AddTask("render",
		semimatch.Config{Procs: []int{0}, Time: 8},
		semimatch.Config{Procs: []int{1}, Time: 8},
		semimatch.Config{Procs: []int{0, 2}, Time: 3},
	)
	in.AddTask("encode",
		semimatch.Config{Procs: []int{1}, Time: 6},
		semimatch.Config{Procs: []int{1, 2}, Time: 2},
	)
	in.AddTask("archive",
		semimatch.Config{Procs: []int{0}, Time: 4},
		semimatch.Config{Procs: []int{1}, Time: 4},
	)
	in.AddTask("index",
		semimatch.Config{Procs: []int{0, 1}, Time: 2},
		semimatch.Config{Procs: []int{2}, Time: 5},
	)

	// The unified solve API: wrap the instance's hypergraph form as a
	// Problem and let Run's auto policy pick — a heuristic race first,
	// then an exact proof since the instance is tiny. The same call
	// would solve a bipartite SINGLEPROC Problem.
	h, err := in.Hypergraph()
	if err != nil {
		log.Fatal(err)
	}
	rep, err := semimatch.Run(context.Background(), semimatch.HypergraphProblem(h),
		semimatch.WithRefine(),
		semimatch.WithObserver(func(inc semimatch.Incumbent) {
			fmt.Printf("incumbent: makespan %d by %s (final=%v)\n", inc.Makespan, inc.Solver, inc.Final)
		}))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("auto policy: makespan %d (%s, solver %s, lower bound %d)\n\n",
		rep.Makespan, rep.Status, rep.Solver, rep.LowerBound)

	// Named algorithms, per registry name, through the scheduling front
	// end (which reports named tasks and simulates timelines).
	for _, alg := range []semimatch.Algorithm{
		semimatch.SGH, semimatch.EGH, semimatch.VGH,
		semimatch.ExpectedVectorGreedy, semimatch.ExactSchedule,
	} {
		s, err := semimatch.Solve(in, alg)
		if err != nil {
			log.Fatalf("%v: %v", alg, err)
		}
		fmt.Printf("%-6s makespan %d", alg, s.Makespan)
		if s.Optimal {
			fmt.Print("  (proven optimal)")
		}
		fmt.Println()
	}

	// Show the best schedule as a timeline.
	s, err := semimatch.Solve(in, semimatch.ExactSchedule)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	tl := s.Simulate()
	if err := tl.Validate(s); err != nil {
		log.Fatal(err)
	}
	tl.Gantt(os.Stdout, s)
	fmt.Println("\nbottlenecks:", s.LoadReport()[0])
}
