// Cluster: a heterogeneous-cluster scheduling scenario — the setting the
// paper's introduction motivates (server virtualization, accelerators,
// tasks choosing among combinations of computational resources).
//
// A batch of jobs arrives at a cluster of CPU nodes and a few accelerator
// nodes. Each job offers several configurations: run on any single CPU
// node of its placement domain (slow), gang up 2 or 4 CPU nodes (faster
// per node), or pair one CPU node with an accelerator (fastest). The goal
// is the minimum makespan. We compare the four hypergraph heuristics and
// the lower bound, then print the bottleneck report of the best schedule.
//
// Run with: go run ./examples/cluster
package main

import (
	"fmt"
	"log"
	"math/rand"

	"semimatch"
)

const (
	cpuNodes   = 48
	accelNodes = 8
	racks      = 4
	jobs       = 300
)

func main() {
	rng := rand.New(rand.NewSource(7))

	// Processor naming: cpu-<rack>-<i> then accel-<i>.
	var names []string
	for r := 0; r < racks; r++ {
		for i := 0; i < cpuNodes/racks; i++ {
			names = append(names, fmt.Sprintf("cpu-%d-%d", r, i))
		}
	}
	for i := 0; i < accelNodes; i++ {
		names = append(names, fmt.Sprintf("accel-%d", i))
	}
	in := semimatch.NewInstance(names...)

	cpusOfRack := func(r int) []int {
		base := r * (cpuNodes / racks)
		out := make([]int, cpuNodes/racks)
		for i := range out {
			out[i] = base + i
		}
		return out
	}

	for j := 0; j < jobs; j++ {
		rack := rng.Intn(racks) // placement domain: jobs stay in one rack
		domain := cpusOfRack(rack)
		work := int64(4 + rng.Intn(28)) // sequential work units

		var cfgs []semimatch.Config
		// Single-node configurations on a few eligible nodes.
		for _, c := range rng.Perm(len(domain))[:3] {
			cfgs = append(cfgs, semimatch.Config{Procs: []int{domain[c]}, Time: work})
		}
		// A 2-node gang: parallel efficiency 90%.
		pair := rng.Perm(len(domain))[:2]
		cfgs = append(cfgs, semimatch.Config{
			Procs: []int{domain[pair[0]], domain[pair[1]]},
			Time:  (work*10 + 17) / 18, // ceil(work / (2*0.9))
		})
		// Some jobs can offload: CPU + accelerator, 4x speedup.
		if rng.Intn(3) == 0 {
			acc := cpuNodes + rng.Intn(accelNodes)
			cpu := domain[rng.Intn(len(domain))]
			t := (work + 3) / 4
			cfgs = append(cfgs, semimatch.Config{Procs: []int{cpu, acc}, Time: t})
		}
		in.AddTask(fmt.Sprintf("job-%03d", j), cfgs...)
	}

	h, err := in.Hypergraph()
	if err != nil {
		log.Fatal(err)
	}
	lb := semimatch.LowerBound(h)
	fmt.Printf("cluster: %d CPU nodes in %d racks, %d accelerators, %d jobs\n",
		cpuNodes, racks, accelNodes, jobs)
	fmt.Printf("lower bound on makespan: %d\n\n", lb)

	best := semimatch.Algorithm(0)
	bestM := int64(1) << 62
	for _, alg := range []semimatch.Algorithm{
		semimatch.SGH, semimatch.VGH, semimatch.EGH, semimatch.ExpectedVectorGreedy,
	} {
		s, err := semimatch.Solve(in, alg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-4s makespan %5d   (%.3f x LB)\n", alg, s.Makespan, float64(s.Makespan)/float64(lb))
		if s.Makespan < bestM {
			best, bestM = alg, s.Makespan
		}
	}

	s, err := semimatch.Solve(in, best)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbest schedule: %v (makespan %d)\n", best, s.Makespan)
	fmt.Println("five most loaded nodes:")
	for _, line := range s.LoadReport()[:5] {
		fmt.Println("  ", line)
	}
	// Count how many jobs chose accelerator configurations.
	offloaded := 0
	for t, task := range in.Tasks {
		cfg := task.Configs[s.Choice[t]]
		for _, p := range cfg.Procs {
			if p >= cpuNodes {
				offloaded++
				break
			}
		}
	}
	fmt.Printf("jobs using an accelerator: %d\n", offloaded)
}
