// Webdispatch: the SINGLEPROC view — dispatching a burst of requests to
// eligible backend servers (machine-eligibility scheduling). Each request
// may only be served by the servers holding its shard replica, a classic
// resource-constraint pattern; minimizing the makespan balances the burst.
//
// We generate the eligibility graph with the paper's FewgManyg generator
// (shards cluster into locality groups), then compare the four greedy
// heuristics with the exact polynomial algorithm for unit requests, and
// run the weighted branch-and-bound on a small weighted variant.
//
// Run with: go run ./examples/webdispatch
package main

import (
	"fmt"
	"log"
	"math/rand"

	"semimatch"
)

func main() {
	const (
		requests = 4000
		servers  = 64
		replicas = 3 // each request can go to ~3 servers
		groups   = 8
	)

	g, err := semimatch.GenerateBipartite(semimatch.FewgManyg, requests, servers, groups, replicas, 2024)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dispatch burst: %d requests over %d servers (%d eligibility edges)\n\n",
		requests, servers, g.NumEdges())

	exactA, opt, err := semimatch.ExactUnit(g, semimatch.ExactOptions{})
	if err != nil {
		log.Fatal(err)
	}
	if err := semimatch.ValidateAssignment(g, exactA); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact optimal makespan: %d requests on the busiest server\n", opt)

	type heur struct {
		name string
		f    func(*semimatch.Graph, semimatch.GreedyOptions) semimatch.Assignment
	}
	for _, h := range []heur{
		{"basic-greedy", semimatch.BasicGreedy},
		{"sorted-greedy", semimatch.SortedGreedy},
		{"double-sorted", semimatch.DoubleSorted},
		{"expected-greedy", semimatch.ExpectedGreedy},
	} {
		a := h.f(g, semimatch.GreedyOptions{})
		m := semimatch.Makespan(g, a)
		fmt.Printf("%-16s makespan %4d  (%.3f x OPT)\n", h.name, m, float64(m)/float64(opt))
	}

	// The Harvey et al. optimal semi-matching must match the exact search.
	ha, err := semimatch.HarveyOptimal(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-16s makespan %4d  (cost-reducing paths)\n", "harvey-optimal", semimatch.Makespan(g, ha))

	// Weighted variant: heavy and light requests; NP-complete, so solve a
	// small sample exactly and compare the greedy on it.
	fmt.Println("\nweighted variant (500 requests, exact branch-and-bound vs sorted-greedy):")
	rng := rand.New(rand.NewSource(5))
	wb := semimatch.NewGraphBuilder(500, 16)
	for t := 0; t < 500; t++ {
		w := int64(1 + rng.Intn(9))
		for _, s := range rng.Perm(16)[:2] {
			wb.AddWeightedEdge(t, s, w)
		}
	}
	wg, err := wb.Build()
	if err != nil {
		log.Fatal(err)
	}
	_, optW, err := semimatch.SolveSingleProc(wg, semimatch.BnBOptions{MaxNodes: 2_000_000})
	if err != nil && err != semimatch.ErrLimit {
		log.Fatal(err)
	}
	status := "optimal"
	if err == semimatch.ErrLimit {
		status = "best found within node budget"
	}
	gm := semimatch.Makespan(wg, semimatch.SortedGreedy(wg, semimatch.GreedyOptions{}))
	fmt.Printf("  branch-and-bound: %d (%s)\n", optW, status)
	fmt.Printf("  sorted-greedy:    %d (%.3f x)\n", gm, float64(gm)/float64(optW))
}
