// Adversarial: demonstrates the paper's worst-case constructions — the
// instances where each greedy heuristic is provably far from optimal — and
// the Theorem 1 reduction from Exact Cover by 3-Sets.
//
// Run with: go run ./examples/adversarial
package main

import (
	"fmt"
	"log"
	"math/rand"

	"semimatch"
	"semimatch/internal/exact"
)

func main() {
	report := func(name string, g *semimatch.Graph) {
		basic := semimatch.Makespan(g, semimatch.BasicGreedy(g, semimatch.GreedyOptions{}))
		sorted := semimatch.Makespan(g, semimatch.SortedGreedy(g, semimatch.GreedyOptions{}))
		double := semimatch.Makespan(g, semimatch.DoubleSorted(g, semimatch.GreedyOptions{}))
		expected := semimatch.Makespan(g, semimatch.ExpectedGreedy(g, semimatch.GreedyOptions{}))
		_, opt, err := semimatch.ExactUnit(g, semimatch.ExactOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s basic=%d sorted=%d double=%d expected=%d optimal=%d\n",
			name, basic, sorted, double, expected, opt)
	}

	fmt.Println("Worst-case families (makespans):")
	report("Fig.1 toy", semimatch.Fig1())
	for k := 2; k <= 6; k++ {
		report(fmt.Sprintf("Chain(k=%d) [Fig.3]", k), semimatch.Chain(k))
	}
	report("ChainPlus [TR Fig.4]", semimatch.ChainPlus())
	report("ExpectedTrap [TR F.5]", semimatch.ExpectedTrap())

	// Theorem 1: scheduling decides Exact Cover by 3-Sets.
	fmt.Println("\nTheorem 1 reduction (X3C → MULTIPROC-UNIT):")
	rng := rand.New(rand.NewSource(99))
	for _, planted := range []bool{true, false} {
		x := randX3C(rng, 4, 6, planted)
		h, err := x.ToMultiproc()
		if err != nil {
			log.Fatal(err)
		}
		_, opt, err := semimatch.SolveMultiProc(h, semimatch.BnBOptions{})
		if err != nil {
			log.Fatal(err)
		}
		_, hasCover := exact.SolveX3C(x)
		fmt.Printf("  planted-cover=%-5v → X3C solvable=%-5v, optimal makespan=%d (1 ⇔ cover)\n",
			planted, hasCover, opt)
	}
}

// randX3C builds a random X3C instance (optionally with a planted cover).
func randX3C(rng *rand.Rand, q, extra int, planted bool) semimatch.X3C {
	x := semimatch.X3C{Q: q}
	if planted {
		perm := rng.Perm(3 * q)
		for i := 0; i < q; i++ {
			x.Sets = append(x.Sets, [3]int{perm[3*i], perm[3*i+1], perm[3*i+2]})
		}
	}
	for i := 0; i < extra; i++ {
		perm := rng.Perm(3 * q)
		x.Sets = append(x.Sets, [3]int{perm[0], perm[1], perm[2]})
	}
	return x
}
