package semimatch_test

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"

	"semimatch"
)

// TestPublicAPIEndToEnd walks the README workflow through the facade:
// build, solve, inspect, persist, reload, re-solve.
func TestPublicAPIEndToEnd(t *testing.T) {
	// SINGLEPROC via the graph builder.
	gb := semimatch.NewGraphBuilder(3, 2)
	gb.AddEdge(0, 0)
	gb.AddEdge(0, 1)
	gb.AddEdge(1, 0)
	gb.AddEdge(2, 1)
	g, err := gb.Build()
	if err != nil {
		t.Fatal(err)
	}
	a, opt, err := semimatch.ExactUnit(g, semimatch.ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// T1 forces P0 and T2 forces P1, so T0 doubles one of them: OPT = 2.
	if opt != 2 {
		t.Fatalf("opt = %d, want 2", opt)
	}
	if err := semimatch.ValidateAssignment(g, a); err != nil {
		t.Fatal(err)
	}
	if m := semimatch.Makespan(g, semimatch.SortedGreedy(g, semimatch.GreedyOptions{})); m < opt {
		t.Fatalf("greedy %d below optimum %d", m, opt)
	}

	// Round-trip through the text format.
	var buf bytes.Buffer
	if err := semimatch.WriteGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := semimatch.ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Fatal("round trip lost edges")
	}

	// MULTIPROC via the hypergraph builder.
	hb := semimatch.NewHypergraphBuilder(2, 3)
	hb.AddEdge(0, []int{0}, 4)
	hb.AddEdge(0, []int{1, 2}, 2)
	hb.AddEdge(1, []int{2}, 3)
	h, err := hb.Build()
	if err != nil {
		t.Fatal(err)
	}
	lb := semimatch.LowerBound(h)
	ha := semimatch.ExpectedVectorGreedyHyp(h, semimatch.HyperOptions{})
	if err := semimatch.ValidateHyperAssignment(h, ha); err != nil {
		t.Fatal(err)
	}
	if m := semimatch.HyperMakespan(h, ha); m < lb {
		t.Fatalf("makespan %d below lower bound %d", m, lb)
	}
	_, optH, err := semimatch.SolveMultiProc(h, semimatch.BnBOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if optH < lb {
		t.Fatalf("optimal %d below LB %d", optH, lb)
	}

	var hbuf bytes.Buffer
	if err := semimatch.WriteHypergraph(&hbuf, h); err != nil {
		t.Fatal(err)
	}
	if _, err := semimatch.ReadHypergraph(&hbuf); err != nil {
		t.Fatal(err)
	}
}

func TestSchedulingFrontEnd(t *testing.T) {
	in := semimatch.NewInstance("p0", "p1")
	in.AddTask("a",
		semimatch.Config{Procs: []int{0}, Time: 2},
		semimatch.Config{Procs: []int{0, 1}, Time: 1})
	in.AddTask("b", semimatch.Config{Procs: []int{1}, Time: 2})
	s, err := semimatch.Solve(in, semimatch.ExactSchedule)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Optimal {
		t.Fatal("exact schedule must be optimal")
	}
	tl := s.Simulate()
	if err := tl.Validate(s); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	tl.Gantt(&sb, s)
	if !strings.Contains(sb.String(), "p0") {
		t.Fatalf("gantt output:\n%s", sb.String())
	}
}

func TestGeneratorsThroughFacade(t *testing.T) {
	h, err := semimatch.GenerateHypergraph(semimatch.HyperParams{
		Gen: semimatch.FewgManyg, N: 100, P: 16, Dv: 3, Dh: 4, G: 4,
		Weights: semimatch.Related,
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if h.NTasks != 100 {
		t.Fatalf("NTasks = %d", h.NTasks)
	}
	g, err := semimatch.GenerateBipartite(semimatch.HiLo, 64, 16, 4, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.NLeft != 64 {
		t.Fatalf("NLeft = %d", g.NLeft)
	}
}

func TestExtensionsThroughFacade(t *testing.T) {
	h, err := semimatch.GenerateHypergraph(semimatch.HyperParams{
		Gen: semimatch.FewgManyg, N: 200, P: 16, Dv: 3, Dh: 4, G: 4,
		Weights: semimatch.Random, MaxW: 20,
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Portfolio beats or ties every member, and refinement never hurts.
	res, err := semimatch.Portfolio(h, semimatch.PortfolioOptions{Refine: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := semimatch.ValidateHyperAssignment(h, res.Assignment); err != nil {
		t.Fatal(err)
	}
	sgh := semimatch.HyperMakespan(h, semimatch.SortedGreedyHyp(h, semimatch.HyperOptions{}))
	if res.Makespan > sgh {
		t.Fatalf("portfolio %d worse than SGH %d", res.Makespan, sgh)
	}
	// Standalone refinement.
	a := semimatch.SortedGreedyHyp(h, semimatch.HyperOptions{})
	r := semimatch.Refine(h, a, semimatch.RefineOptions{})
	if r.After > r.Before {
		t.Fatalf("refine worsened: %d → %d", r.Before, r.After)
	}
	// Exact-arithmetic variant.
	ax, err := semimatch.ExpectedVectorGreedyHypExact(h)
	if err != nil {
		t.Fatal(err)
	}
	if err := semimatch.ValidateHyperAssignment(h, ax); err != nil {
		t.Fatal(err)
	}
	// Online scheduling on the Chain family realizes ratio k.
	g := semimatch.Chain(5)
	ratio, err := semimatch.OnlineCompetitiveRatio(g)
	if err != nil {
		t.Fatal(err)
	}
	if ratio != 5 {
		t.Fatalf("online ratio on Chain(5) = %v, want 5", ratio)
	}
	s := semimatch.NewOnlineScheduler(2)
	if _, err := s.Assign([]int32{0, 1}, 3); err != nil {
		t.Fatal(err)
	}
	if s.Makespan() != 3 {
		t.Fatalf("online makespan = %d", s.Makespan())
	}
}

func TestAdversarialThroughFacade(t *testing.T) {
	g := semimatch.Chain(4)
	sorted := semimatch.Makespan(g, semimatch.SortedGreedy(g, semimatch.GreedyOptions{}))
	_, opt, err := semimatch.ExactUnit(g, semimatch.ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sorted != 4 || opt != 1 {
		t.Fatalf("Chain(4): sorted=%d opt=%d, want 4 and 1", sorted, opt)
	}
	if semimatch.Fig1().NLeft != 2 {
		t.Fatal("Fig1 shape")
	}
	x := semimatch.X3C{Q: 1, Sets: [][3]int{{0, 1, 2}}}
	h, err := x.ToMultiproc()
	if err != nil {
		t.Fatal(err)
	}
	_, m, err := semimatch.SolveMultiProc(h, semimatch.BnBOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if m != 1 {
		t.Fatalf("trivial X3C optimal = %d", m)
	}
}

// TestBatchAndContextFacade exercises the context-aware entry points
// through the public API: SolveBatch over a generated workload, and a
// cancelled branch-and-bound returning its incumbent with ErrCancelled.
func TestBatchAndContextFacade(t *testing.T) {
	var instances []*semimatch.Hypergraph
	for seed := int64(1); seed <= 8; seed++ {
		h, err := semimatch.GenerateHypergraph(semimatch.HyperParams{
			Gen: semimatch.FewgManyg, N: 60, P: 8, Dv: 3, Dh: 4, G: 4,
			Weights: semimatch.Related,
		}, seed)
		if err != nil {
			t.Fatal(err)
		}
		instances = append(instances, h)
	}
	results, err := semimatch.SolveBatch(context.Background(), instances, semimatch.BatchOptions{Refine: true})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("instance %d: %v", i, r.Err)
		}
		if err := semimatch.ValidateHyperAssignment(instances[i], r.Assignment); err != nil {
			t.Fatalf("instance %d: %v", i, err)
		}
		if lb := semimatch.LowerBound(instances[i]); r.Makespan < lb {
			t.Fatalf("instance %d: makespan %d below LB %d", i, r.Makespan, lb)
		}
	}

	// A cancelled context surfaces ErrCancelled but still yields a valid
	// incumbent schedule.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	a, m, err := semimatch.SolveMultiProcCtx(ctx, instances[0], semimatch.BnBOptions{})
	if err == nil {
		t.Skip("solved before the first context poll")
	}
	if !errors.Is(err, semimatch.ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	if err := semimatch.ValidateHyperAssignment(instances[0], a); err != nil {
		t.Fatal(err)
	}
	if semimatch.HyperMakespan(instances[0], a) != m {
		t.Fatal("incumbent makespan mismatch")
	}
}

// TestSolverDiscovery exercises the public registry facade: the catalog
// enumerates every solver, lookups resolve names and aliases, and the
// looked-up solver actually solves.
func TestSolverDiscovery(t *testing.T) {
	solvers := semimatch.Solvers()
	if len(solvers) < 16 {
		t.Fatalf("catalog too small: %d solvers", len(solvers))
	}
	classes := map[semimatch.SolverClass]int{}
	for _, s := range solvers {
		classes[s.Class]++
	}
	if classes[semimatch.ClassSingleProc] == 0 || classes[semimatch.ClassMultiProc] == 0 {
		t.Fatalf("catalog missing a class: %v", classes)
	}

	sol, err := semimatch.LookupSolver("evg")
	if err != nil || sol.Name != "EVG" {
		t.Fatalf("LookupSolver(evg) = %v, %v", sol, err)
	}
	if sol.Kind != semimatch.KindHeuristic || sol.Class != semimatch.ClassMultiProc {
		t.Fatalf("EVG capability metadata wrong: %v/%v", sol.Class, sol.Kind)
	}
	if _, err := semimatch.LookupSolver("no-such-solver"); err == nil {
		t.Fatal("unknown solver must error")
	}
	exact, err := semimatch.LookupClassSolver(semimatch.ClassSingleProc, "exact")
	if err != nil || exact.Name != "ExactUnit" || !exact.Optimal() {
		t.Fatalf("LookupClassSolver(SINGLEPROC, exact) = %v, %v", exact, err)
	}

	b := semimatch.NewHypergraphBuilder(2, 2)
	b.AddEdge(0, []int{0}, 2)
	b.AddEdge(0, []int{0, 1}, 1)
	b.AddEdge(1, []int{1}, 3)
	h, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	a, err := sol.SolveHyper(context.Background(), h, semimatch.SolverOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := semimatch.ValidateHyperAssignment(h, a); err != nil {
		t.Fatal(err)
	}
}

// TestServiceFacade drives the solving-as-a-service public API:
// fingerprinting, NewService, cached solves.
func TestServiceFacade(t *testing.T) {
	b1 := semimatch.NewHypergraphBuilder(2, 2)
	b1.AddEdge(0, []int{0}, 2)
	b1.AddEdge(0, []int{0, 1}, 1)
	b1.AddEdge(1, []int{1}, 3)
	h1, err := b1.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Isomorph: same instance, configurations inserted in reverse order.
	b2 := semimatch.NewHypergraphBuilder(2, 2)
	b2.AddEdge(0, []int{1, 0}, 1)
	b2.AddEdge(0, []int{0}, 2)
	b2.AddEdge(1, []int{1}, 3)
	h2, err := b2.Build()
	if err != nil {
		t.Fatal(err)
	}
	f1, err := semimatch.Fingerprint(h1)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := semimatch.Fingerprint(h2)
	if err != nil {
		t.Fatal(err)
	}
	if f1 == "" || f1 != f2 {
		t.Fatalf("isomorph fingerprints differ: %q vs %q", f1, f2)
	}
	if _, err := semimatch.Fingerprint("nope"); err == nil {
		t.Fatal("Fingerprint must reject unsupported types")
	}

	svc := semimatch.NewService(semimatch.ServiceOptions{})
	r1, err := svc.Solve(context.Background(), h1, "")
	if err != nil {
		t.Fatal(err)
	}
	if r1.Fingerprint != f1 {
		t.Fatalf("service fingerprint %q, want %q", r1.Fingerprint, f1)
	}
	if !r1.Optimal || r1.Makespan != 3 {
		t.Fatalf("auto policy on a 2-task instance: %+v", r1)
	}
	r2, err := svc.Solve(context.Background(), h2, "")
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Cached || r2.Makespan != r1.Makespan {
		t.Fatalf("isomorph should be a cache hit: %+v", r2)
	}
	if err := semimatch.ValidateHyperAssignment(h2, semimatch.HyperAssignment(r2.Assignment)); err != nil {
		t.Fatalf("cache-served assignment invalid for the isomorph: %v", err)
	}
	if _, err := svc.Solve(context.Background(), h1, "no-such"); !errors.Is(err, semimatch.ErrUnknownAlgorithm) {
		t.Fatalf("err = %v, want ErrUnknownAlgorithm", err)
	}
	if st := svc.Stats(); st.Solves != 1 || st.CacheHits != 1 {
		t.Fatalf("stats: %+v", st)
	}
}
