package semimatch

import (
	"context"
	"fmt"
	"io"

	"semimatch/internal/adversarial"
	"semimatch/internal/batch"
	"semimatch/internal/bipartite"
	"semimatch/internal/cert"
	"semimatch/internal/core"
	"semimatch/internal/encode"
	"semimatch/internal/exact"
	"semimatch/internal/gen"
	"semimatch/internal/hypergraph"
	"semimatch/internal/online"
	"semimatch/internal/portfolio"
	"semimatch/internal/refine"
	"semimatch/internal/registry"
	"semimatch/internal/sched"
	"semimatch/internal/service"
	"semimatch/internal/solve"
	"semimatch/internal/telemetry"
)

// --- The unified solve API: Problem → Run → Report ---

// Problem is one instance of either problem class — a sum over *Graph
// (SINGLEPROC) and *Hypergraph (MULTIPROC) carrying its class and
// canonical fingerprint. Build one with GraphProblem, HypergraphProblem
// or NewProblem; the zero value is empty and solves to an error.
type Problem = solve.Problem

// GraphProblem wraps a SINGLEPROC instance as a Problem.
func GraphProblem(g *Graph) Problem { return solve.Bipartite(g) }

// HypergraphProblem wraps a MULTIPROC instance as a Problem.
func HypergraphProblem(h *Hypergraph) Problem { return solve.Hyper(h) }

// NewProblem wraps any supported instance type (*Graph, *Hypergraph, or a
// Problem) as a Problem.
func NewProblem(instance any) (Problem, error) { return solve.NewProblem(instance) }

// Report is the unified outcome of one Run: the schedule in the problem's
// own encoding, its makespan and lower bound, the optimality status, the
// producing solver's name, search statistics and wall time.
type Report = solve.Report

// SolveStatus classifies how trustworthy a Report's schedule is.
type SolveStatus = solve.Status

// SolveStatus values.
const (
	StatusHeuristic = solve.StatusHeuristic
	StatusOptimal   = solve.StatusOptimal
	StatusTruncated = solve.StatusTruncated
)

// Option is one functional Run option.
type Option = solve.Option

// Run options.
var (
	// WithAlgorithm runs one named registry solver (name or alias)
	// instead of the auto policy.
	WithAlgorithm = solve.WithAlgorithm
	// WithDeadline bounds the whole Run; on expiry the best schedule
	// found so far is returned with StatusTruncated.
	WithDeadline = solve.WithDeadline
	// WithWorkers bounds solver-internal parallelism (0 = GOMAXPROCS).
	WithWorkers = solve.WithWorkers
	// WithNodeBudget caps branch-and-bound search nodes.
	WithNodeBudget = solve.WithNodeBudget
	// WithWarmStart seeds any exact stage with a known feasible schedule
	// in the problem's own encoding: the branch-and-bound engines adopt
	// it as their initial incumbent and prune against its makespan from
	// the first node. An infeasible seed is ignored.
	WithWarmStart = solve.WithWarmStart
	// WithRefine post-processes MULTIPROC schedules with local search.
	WithRefine = solve.WithRefine
	// WithPortfolio restricts the auto policy's heuristic race to the
	// named members.
	WithPortfolio = solve.WithPortfolio
	// WithObserver registers an incumbent observer on the run.
	WithObserver = solve.WithObserver
	// WithExactLimit bounds the auto policy's exact-attempt stage to
	// instances of at most that many tasks (negative disables it).
	WithExactLimit = solve.WithExactLimit
	// WithVerify independently verifies the result's certificate before
	// Run returns: Report.Trust carries the established tier, and an
	// optimality claim that does not verify is downgraded to
	// StatusHeuristic with ErrVerifyFailed returned alongside the Report.
	WithVerify = solve.WithVerify
	// WithTrace records the solve's phase spans (compile, root-bounds,
	// greedy, search, refine, verify) into Report.Trace.
	WithTrace = solve.WithTrace
	// WithProgress registers a periodic search-introspection hook that
	// receives SearchProgress snapshots during exact stages.
	WithProgress = solve.WithProgress
)

// Span is one timed phase of a solve or request: a name, a wall-clock
// interval, ordered attributes, and child spans forming a tree. Emit a
// tree as NDJSON with WriteNDJSON or human-readable with Format.
type Span = telemetry.Span

// Trace is the root Span of one recorded solve, carried on
// Report.Trace when WithTrace is set.
type Trace = telemetry.Trace

// SearchProgress is one periodic snapshot of a running branch-and-bound
// search (nodes, rate, incumbent/bound gap, steals, deque depths),
// delivered to a WithProgress hook.
type SearchProgress = telemetry.SearchProgress

// ErrVerifyFailed reports that WithVerify was requested and the result's
// certificate did not withstand independent verification.
var ErrVerifyFailed = solve.ErrVerifyFailed

// Incumbent is one observation of a run's best-schedule-so-far; see
// Observer.
type Incumbent = solve.Incumbent

// Observer receives the incumbent trajectory of a Run registered with
// WithObserver: the makespan-decreasing sequence of best schedules found
// so far, closed by one Final observation matching the returned Report.
// Calls are serialized, polled at solver checkpoints (never per search
// node), and panic-isolated.
type Observer = solve.Observer

// Run solves a Problem of either class — the single class-generic entry
// point every dispatch layer (batch, service, CLIs) routes through. With
// WithAlgorithm it runs exactly that registry solver; otherwise the auto
// policy races the class's heuristic lineup and then, when the instance
// is small enough, attempts an exact branch-and-bound proof. Deadlines
// and node budgets degrade the answer to the best schedule found so far
// (StatusTruncated) instead of failing, and WithObserver watches bounds
// tighten during a long solve.
func Run(ctx context.Context, p Problem, opts ...Option) (*Report, error) {
	return solve.Run(ctx, p, opts...)
}

// --- Proof-carrying results ---

// Certificate is the proof-carrying form of one result: the problem's
// canonical fingerprint, the schedule, its claimed makespan and lower
// bound, and an optimality witness naming which argument closed the gap.
// Every Report and ServiceResult carries one; Verify checks it against
// the instance without trusting its producer.
type Certificate = cert.Certificate

// CertWitness is a certificate's optimality argument.
type CertWitness = cert.Witness

// WitnessKind names the optimality argument of a Certificate.
type WitnessKind = cert.WitnessKind

// WitnessKind values: no claim, a lower bound that equals the makespan
// (re-derivable from the instance), or a solver attestation of complete
// search.
const (
	WitnessNone        = cert.WitnessNone
	WitnessAverageLoad = cert.WitnessAverageLoad
	WitnessMaxElement  = cert.WitnessMaxElement
	WitnessExhaustive  = cert.WitnessExhaustive
	WitnessPacking     = cert.WitnessPacking
	WitnessMatching    = cert.WitnessMatching
)

// TrustTier is the trust level Verify establishes for a certificate.
type TrustTier = cert.Tier

// TrustTier values, weakest to strongest.
const (
	TierHeuristic = cert.TierHeuristic
	TierAttested  = cert.TierAttested
	TierVerified  = cert.TierVerified
)

// Verify checks a Certificate against the instance (*Graph or
// *Hypergraph) it claims to certify, trusting nothing: the fingerprint,
// the schedule's feasibility, the loads/makespan and the claimed bound
// are all recomputed. It returns the trust tier the certificate earns —
// TierVerified when a re-derived bound proves optimality locally,
// TierAttested when optimality rests on a consistent solver attestation,
// TierHeuristic when no optimality is claimed — or an error describing
// the first claim that does not hold.
func Verify(instance any, c *Certificate) (TrustTier, error) { return cert.Verify(instance, c) }

// CertBounds re-derives the two cheap instance-level lower bounds
// certificates are checked against: the average-load bound and the
// max-element bound.
func CertBounds(instance any) (avg, maxElem int64, err error) { return cert.Bounds(instance) }

// --- Solver registry (discovery) ---

// Solver is one self-describing entry of the solver registry: name,
// aliases, problem class, kind, cost class and a context-aware solve
// function. Every algorithm in this package is registered exactly once,
// and all dispatch layers (Portfolio, the bench harness, Solve, SolveBatch
// and the CLIs) resolve algorithms through the registry.
type Solver = registry.Solver

// SolverOptions carries per-solver tuning knobs for Solver.SolveSingle /
// Solver.SolveHyper; the zero value is the paper's behaviour everywhere.
type SolverOptions = registry.Options

// SolverClass is the problem class a solver accepts.
type SolverClass = registry.Class

// SolverKind distinguishes heuristic, exact and online solvers.
type SolverKind = registry.Kind

// SolverCost is a solver's coarse running-time class.
type SolverCost = registry.Cost

// Solver capability values.
const (
	ClassSingleProc = registry.SingleProc
	ClassMultiProc  = registry.MultiProc

	KindHeuristic = registry.Heuristic
	KindExact     = registry.Exact
	KindOnline    = registry.Online

	CostNearLinear  = registry.CostNearLinear
	CostPolynomial  = registry.CostPolynomial
	CostExponential = registry.CostExponential
)

// Solvers enumerates the full solver catalog in its deterministic listing
// order.
func Solvers() []*Solver { return registry.Solvers() }

// LookupSolver resolves an algorithm name or alias (case-insensitive)
// across both problem classes. Names that mean different solvers per class
// (e.g. "bnb") and unknown names yield descriptive errors; unknown names
// come with suggestions.
func LookupSolver(name string) (*Solver, error) { return registry.Lookup(name) }

// LookupClassSolver resolves a name within one problem class — use it when
// the instance kind is known.
func LookupClassSolver(class SolverClass, name string) (*Solver, error) {
	return registry.LookupClass(class, name)
}

// Graph is a bipartite SINGLEPROC instance: tasks × processors with
// optional execution-time edge weights. Build one with NewGraphBuilder.
type Graph = bipartite.Graph

// GraphBuilder accumulates task→processor edges.
type GraphBuilder = bipartite.Builder

// NewGraphBuilder returns a builder for a SINGLEPROC instance with nTasks
// tasks and nProcs processors.
func NewGraphBuilder(nTasks, nProcs int) *GraphBuilder {
	return bipartite.NewBuilder(nTasks, nProcs)
}

// Hypergraph is a MULTIPROC instance: each hyperedge is one configuration
// (a processor set plus a weight) of exactly one task.
type Hypergraph = hypergraph.Hypergraph

// HypergraphBuilder accumulates task configurations.
type HypergraphBuilder = hypergraph.Builder

// NewHypergraphBuilder returns a builder for a MULTIPROC instance.
func NewHypergraphBuilder(nTasks, nProcs int) *HypergraphBuilder {
	return hypergraph.NewBuilder(nTasks, nProcs)
}

// Assignment maps each task to its processor (SINGLEPROC semi-matching).
type Assignment = core.Assignment

// HyperAssignment maps each task to its chosen configuration (MULTIPROC
// semi-matching).
type HyperAssignment = core.HyperAssignment

// GreedyOptions tunes the bipartite greedy heuristics; the zero value is
// the paper's behaviour.
type GreedyOptions = core.GreedyOptions

// HyperOptions tunes the hypergraph heuristics; the zero value is the
// paper's behaviour with the fast load-vector machinery.
type HyperOptions = core.HyperOptions

// ExactOptions configures the exact SINGLEPROC-UNIT algorithm.
type ExactOptions = core.ExactOptions

// Search strategies and feasibility testers for ExactUnit.
const (
	SearchIncremental = core.SearchIncremental
	SearchBisection   = core.SearchBisection
	TestCapacitated   = core.TestCapacitated
	TestReplicate     = core.TestReplicate
	TestReplicateHK   = core.TestReplicateHK
)

// SINGLEPROC heuristics (Sec. IV-B).
var (
	BasicGreedy    = core.BasicGreedy
	SortedGreedy   = core.SortedGreedy
	DoubleSorted   = core.DoubleSorted
	ExpectedGreedy = core.ExpectedGreedy
)

// LPTGreedy is the longest-processing-time-first baseline for weighted
// SINGLEPROC (extension beyond the paper's unit-only heuristics).
var LPTGreedy = core.LPTGreedy

// LowerBoundSingle is the weighted SINGLEPROC lower bound
// max(⌈Σw/p⌉, max w).
var LowerBoundSingle = core.LowerBoundSingle

// ExactUnit solves SINGLEPROC-UNIT optimally (Sec. IV-A) and returns the
// assignment and the optimal makespan.
var ExactUnit = core.ExactUnit

// HarveyOptimal is the cost-reducing-path optimal semi-matching algorithm
// of Harvey et al., an independent exact SINGLEPROC-UNIT baseline.
var HarveyOptimal = core.HarveyOptimal

// MULTIPROC heuristics (Sec. IV-D).
var (
	SortedGreedyHyp         = core.SortedGreedyHyp
	VectorGreedyHyp         = core.VectorGreedyHyp
	ExpectedGreedyHyp       = core.ExpectedGreedyHyp
	ExpectedVectorGreedyHyp = core.ExpectedVectorGreedyHyp
)

// Exact-arithmetic (scaled-integer) variants of the expected heuristics —
// an ablation for floating-point tie sensitivity.
var (
	ExpectedGreedyHypExact       = core.ExpectedGreedyHypExact
	ExpectedVectorGreedyHypExact = core.ExpectedVectorGreedyHypExact
)

// LowerBound is the Eq. (1) load-balance lower bound for MULTIPROC.
var LowerBound = core.LowerBound

// Refine post-processes a MULTIPROC assignment with single-task local
// search; it never increases the makespan.
var Refine = refine.Refine

// RefineCtx is Refine with cooperative cancellation: it stops at the next
// context poll and returns the (valid, never worse) assignment found so
// far with Interrupted set.
var RefineCtx = refine.RefineCtx

// RefineOptions bounds the local search.
type RefineOptions = refine.Options

// RefineResult reports the refinement outcome.
type RefineResult = refine.Result

// Portfolio runs several heuristics concurrently (optionally refined) and
// returns the best schedule — the practical entry point when no single
// heuristic dominates. Unknown algorithm names yield an error.
var Portfolio = portfolio.Solve

// PortfolioCtx is Portfolio racing a context: if the deadline expires
// before every member finishes, the best candidate finished so far is
// returned with Incomplete set.
var PortfolioCtx = portfolio.SolveCtx

// PortfolioOptions configures Portfolio.
type PortfolioOptions = portfolio.Options

// PortfolioResult is the winning schedule plus the league table.
type PortfolioResult = portfolio.Result

// --- Online scheduling (machine-eligibility arrivals) ---

// OnlineScheduler assigns arriving tasks immediately to the least-loaded
// eligible processor.
type OnlineScheduler = online.Scheduler

// NewOnlineScheduler returns an online scheduler over nProcs processors.
func NewOnlineScheduler(nProcs int) *OnlineScheduler { return online.New(nProcs) }

// OnlineReplay feeds a SINGLEPROC instance to the online scheduler in the
// given arrival order (nil for index order).
var OnlineReplay = online.Replay

// OnlineCompetitiveRatio measures online greedy against the offline
// optimum on a unit instance.
var OnlineCompetitiveRatio = online.CompetitiveRatio

// Evaluation helpers.
var (
	Loads                   = core.Loads
	Makespan                = core.Makespan
	ValidateAssignment      = core.ValidateAssignment
	HyperLoads              = core.HyperLoads
	HyperMakespan           = core.HyperMakespan
	ValidateHyperAssignment = core.ValidateHyperAssignment
)

// Exact branch-and-bound solvers for small NP-hard instances.
var (
	SolveSingleProc = exact.SolveSingleProc
	SolveMultiProc  = exact.SolveMultiProc
)

// Context-aware variants: the search polls the context alongside the node
// budget and, on cancellation, returns its incumbent (the best schedule
// found so far) with an error wrapping ErrCancelled and ctx.Err().
var (
	SolveSingleProcCtx = exact.SolveSingleProcCtx
	SolveMultiProcCtx  = exact.SolveMultiProcCtx
)

// Parallel work-stealing branch-and-bound: the search tree is split at a
// shallow frontier across BnBOptions.Workers workers (default GOMAXPROCS)
// that share one incumbent bound and one node budget, with stronger
// prunes (cheapest-cost child ordering, a max-element lower bound,
// symmetry breaking over interchangeable processors). Same error and
// incumbent contract as the sequential solvers; the optimal makespan is
// deterministic, the returned schedule may differ across runs when
// several optima exist. Registered as BnB-SP-Par / BnB-MP-Par.
var (
	SolveSingleProcPar    = exact.SolveSingleProcPar
	SolveMultiProcPar     = exact.SolveMultiProcPar
	SolveSingleProcParCtx = exact.SolveSingleProcParCtx
	SolveMultiProcParCtx  = exact.SolveMultiProcParCtx
)

// BnBOptions bounds the branch-and-bound search.
type BnBOptions = exact.Options

// BnBStats reports how much work a branch-and-bound search did (set
// BnBOptions.Stats to collect it).
type BnBStats = exact.SearchStats

// ErrLimit reports an exhausted branch-and-bound node budget.
var ErrLimit = exact.ErrLimit

// ErrCancelled reports a context cancelled mid-search; the accompanying
// result is still a valid schedule, just not provably optimal.
var ErrCancelled = exact.ErrCancelled

// --- Batch solving ---

// BatchOptions configures SolveProblems and SolveBatch.
type BatchOptions = batch.Options

// BatchResult is the per-instance outcome of SolveBatch.
//
// Deprecated: use SolveProblems and BatchOutcome, which cover both
// problem classes and carry the full Report.
type BatchResult = batch.Result

// BatchOutcome is the per-problem outcome of SolveProblems: the unified
// Report, or that problem's failure.
type BatchOutcome = batch.Outcome

// BatchRunner is a reusable batch solver (SolveProblems and SolveBatch
// create one per call).
type BatchRunner = batch.Runner

// NewBatchRunner returns a reusable batch solver.
func NewBatchRunner(opts BatchOptions) *BatchRunner { return batch.New(opts) }

// SolveProblems solves many Problems — SINGLEPROC and MULTIPROC freely
// mixed — on a worker pool spanning GOMAXPROCS cores. Each problem runs
// Run's auto policy: a heuristic race first, then — when the instance
// allows it — an exact attempt (ExactUnit or parallel branch-and-bound),
// falling back to the best schedule found so far on timeout. Failures are
// isolated per problem (BatchOutcome.Err); makespans are deterministic in
// the worker count (schedule identity may vary when the parallel exact
// stage finds co-optimal schedules). Cancelling ctx stops the batch
// promptly, returning partial results alongside the context's error.
func SolveProblems(ctx context.Context, problems []Problem, opts BatchOptions) ([]BatchOutcome, error) {
	return batch.New(opts).RunProblems(ctx, problems)
}

// SolveBatch solves many MULTIPROC instances; it is SolveProblems
// restricted to hypergraphs, kept as a thin wrapper for callers of the
// pre-unification API.
//
// Deprecated: SolveBatch accepts only hypergraphs, so SINGLEPROC
// workloads cannot use the batch pipeline through it. Use SolveProblems
// with []Problem, which batches both encodings.
func SolveBatch(ctx context.Context, instances []*Hypergraph, opts BatchOptions) ([]BatchResult, error) {
	return batch.New(opts).Run(ctx, instances)
}

// --- Generators (Sec. V-A) ---

// Generator selects an instance structure generator.
type Generator = gen.Generator

// WeightScheme selects hyperedge weights.
type WeightScheme = gen.WeightScheme

// Generator and weight-scheme values.
const (
	HiLo      = gen.HiLo
	FewgManyg = gen.FewgManyg
	Unit      = gen.Unit
	Related   = gen.Related
	Random    = gen.Random
)

// HyperParams parameterizes GenerateHypergraph.
type HyperParams = gen.HyperParams

// GenerateBipartite creates a random SINGLEPROC instance.
var GenerateBipartite = gen.Bipartite

// GenerateHypergraph creates a random MULTIPROC instance.
var GenerateHypergraph = gen.Hypergraph

// --- Worst-case families (Sec. III, IV-B) ---

var (
	// Fig1 is the 2-task toy where basic-greedy is 2× off.
	Fig1 = adversarial.Fig1
	// Chain is the Fig. 3 family: greedy k vs optimal 1.
	Chain = adversarial.Chain
	// ChainPlus extends Chain(3) to trap double-sorted.
	ChainPlus = adversarial.ChainPlus
	// ExpectedTrap extends further to trap expected-greedy.
	ExpectedTrap = adversarial.ExpectedTrap
)

// X3C is an Exact Cover by 3-Sets instance (Theorem 1 reduction source).
type X3C = adversarial.X3C

// --- Scheduling front end ---

// Config is one execution option of a task.
type Config = sched.Config

// Task is a named task with configurations.
type Task = sched.Task

// Instance is a named MULTIPROC scheduling instance.
type Instance = sched.Instance

// Schedule is a solved instance.
type Schedule = sched.Schedule

// Timeline is the discrete-event realization of a schedule.
type Timeline = sched.Timeline

// Algorithm selects the scheduling algorithm for Solve.
type Algorithm = sched.Algorithm

// Scheduling algorithm values.
const (
	SGH                  = sched.SortedGreedy
	EGH                  = sched.ExpectedGreedy
	VGH                  = sched.VectorGreedy
	ExpectedVectorGreedy = sched.ExpectedVectorGreedy
	ExactSchedule        = sched.Exact
)

// NewInstance returns a scheduling instance with the given processor
// names.
func NewInstance(procNames ...string) *Instance { return sched.NewInstance(procNames...) }

// Solve schedules an instance; the Algorithm enum maps through the solver
// registry.
var Solve = sched.Solve

// SolveByName schedules an instance with any registered MULTIPROC solver,
// by name or alias.
var SolveByName = sched.SolveByName

// --- Solving as a service ---

// Fingerprint returns the collision-resistant content hash (hex SHA-256)
// of an instance's canonical form. instance must be a *Graph or a
// *Hypergraph. Isomorphic instances — the same problem with
// configurations or processors listed in a different order, or a
// weighted encoding whose weights are all one — share a fingerprint; any
// structural or weight difference changes it. This is the identity the
// service's result cache is keyed by.
func Fingerprint(instance any) (string, error) {
	switch v := instance.(type) {
	case *Hypergraph:
		return encode.FingerprintHypergraph(v)
	case *Graph:
		return encode.FingerprintBipartite(v)
	default:
		return "", fmt.Errorf("semimatch: Fingerprint: unsupported instance type %T", instance)
	}
}

// Service is a long-running, concurrency-safe solving service: requests
// are canonicalized and fingerprinted, repeated (or isomorphic) requests
// are answered from a sharded LRU result cache, concurrent identical
// requests coalesce into a single solve, and a bounded admission queue
// rejects overload fast with ErrServiceOverloaded. cmd/semiserve is the
// HTTP front end over this type.
type Service = service.Service

// ServiceOptions configures NewService; the zero value uses sensible
// defaults (4096-entry cache, 64-deep queue, GOMAXPROCS workers).
type ServiceOptions = service.Options

// ServiceResult is one solved (or cache-served) request.
type ServiceResult = service.Result

// ServiceStats is a counters snapshot of a Service.
type ServiceStats = service.Stats

// NewService returns a Service with the given options.
func NewService(opts ServiceOptions) *Service { return service.New(opts) }

// Service sentinel errors.
var (
	// ErrServiceOverloaded reports a request rejected by admission control
	// because the solve queue was full.
	ErrServiceOverloaded = service.ErrOverloaded
	// ErrUnknownAlgorithm reports an algorithm name the registry cannot
	// resolve for the instance's class.
	ErrUnknownAlgorithm = service.ErrUnknownAlgorithm
)

// --- Persistence ---

// WriteGraph writes a bipartite instance in the text format.
func WriteGraph(w io.Writer, g *Graph) error { return encode.WriteBipartite(w, g) }

// ReadGraph reads a bipartite instance.
func ReadGraph(r io.Reader) (*Graph, error) { return encode.ReadBipartite(r) }

// WriteHypergraph writes a MULTIPROC instance in the text format.
func WriteHypergraph(w io.Writer, h *Hypergraph) error { return encode.WriteHypergraph(w, h) }

// ReadHypergraph reads a MULTIPROC instance.
func ReadHypergraph(r io.Reader) (*Hypergraph, error) { return encode.ReadHypergraph(r) }
