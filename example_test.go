package semimatch_test

import (
	"context"
	"fmt"

	"semimatch"
)

// The unified solve API: one class-generic Run answers both encodings.
// A bipartite SINGLEPROC instance and a hypergraph MULTIPROC instance
// each become a Problem; the auto policy races the class's heuristics
// and then proves optimality on these tiny instances.
func ExampleRun() {
	b := semimatch.NewGraphBuilder(2, 2)
	b.AddEdge(0, 0)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0)
	g, _ := b.Build()

	hb := semimatch.NewHypergraphBuilder(2, 3)
	hb.AddEdge(0, []int{0}, 4)
	hb.AddEdge(0, []int{1, 2}, 2)
	hb.AddEdge(1, []int{0}, 3)
	h, _ := hb.Build()

	for _, p := range []semimatch.Problem{
		semimatch.GraphProblem(g),
		semimatch.HypergraphProblem(h),
	} {
		rep, err := semimatch.Run(context.Background(), p)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%s: makespan %d (%s)\n", rep.Class, rep.Makespan, rep.Status)
	}
	// Output:
	// SINGLEPROC: makespan 1 (optimal)
	// MULTIPROC: makespan 3 (optimal)
}

// SolveProblems batches both encodings through one worker pool — the
// class-generic successor of the hypergraph-only SolveBatch.
func ExampleSolveProblems() {
	b := semimatch.NewGraphBuilder(2, 2)
	b.AddEdge(0, 0)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0)
	g, _ := b.Build()

	hb := semimatch.NewHypergraphBuilder(2, 2)
	hb.AddEdge(0, []int{0}, 4)
	hb.AddEdge(0, []int{1}, 4)
	hb.AddEdge(1, []int{0}, 2)
	h, _ := hb.Build()

	problems := []semimatch.Problem{
		semimatch.GraphProblem(g),
		semimatch.HypergraphProblem(h),
	}
	outcomes, err := semimatch.SolveProblems(context.Background(), problems, semimatch.BatchOptions{})
	if err != nil {
		panic(err)
	}
	for i, o := range outcomes {
		fmt.Printf("problem %d: makespan %d, optimal %v\n", i, o.Report.Makespan, o.Report.Optimal())
	}
	// Output:
	// problem 0: makespan 1, optimal true
	// problem 1: makespan 4, optimal true
}

// The Fig. 1 instance of the paper: two tasks, two processors. T1 can run
// anywhere, T2 only on P0. Basic greedy stacks both on P0; the exact
// algorithm balances them.
func ExampleExactUnit() {
	b := semimatch.NewGraphBuilder(2, 2)
	b.AddEdge(0, 0)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0)
	g, _ := b.Build()

	basic := semimatch.BasicGreedy(g, semimatch.GreedyOptions{})
	fmt.Println("basic-greedy makespan:", semimatch.Makespan(g, basic))

	_, opt, _ := semimatch.ExactUnit(g, semimatch.ExactOptions{})
	fmt.Println("optimal makespan:", opt)
	// Output:
	// basic-greedy makespan: 2
	// optimal makespan: 1
}

// A MULTIPROC instance in the hypergraph form: a task may run alone on P0
// (4 time units) or split over P1 and P2 (2 units each).
func ExampleLowerBound() {
	b := semimatch.NewHypergraphBuilder(2, 3)
	b.AddEdge(0, []int{0}, 4)
	b.AddEdge(0, []int{1, 2}, 2)
	b.AddEdge(1, []int{0}, 3)
	h, _ := b.Build()

	fmt.Println("lower bound:", semimatch.LowerBound(h))
	a := semimatch.ExpectedVectorGreedyHyp(h, semimatch.HyperOptions{})
	fmt.Println("EVG makespan:", semimatch.HyperMakespan(h, a))
	// Output:
	// lower bound: 3
	// EVG makespan: 3
}

// The scheduling front end: named processors and tasks, solved and
// simulated.
func ExampleSolve() {
	in := semimatch.NewInstance("cpu", "gpu")
	in.AddTask("train",
		semimatch.Config{Procs: []int{0}, Time: 9},
		semimatch.Config{Procs: []int{0, 1}, Time: 4})
	in.AddTask("etl", semimatch.Config{Procs: []int{0}, Time: 3})

	s, _ := semimatch.Solve(in, semimatch.ExactSchedule)
	fmt.Println("makespan:", s.Makespan)
	fmt.Println("train runs on", len(in.Tasks[0].Configs[s.Choice[0]].Procs), "processors")
	// Output:
	// makespan: 7
	// train runs on 2 processors
}

// Chain(k) is the paper's Fig. 3 family: sorted-greedy is k times worse
// than optimal, and online greedy realizes the Θ(log p) competitive lower
// bound exactly.
func ExampleChain() {
	g := semimatch.Chain(5)
	sorted := semimatch.SortedGreedy(g, semimatch.GreedyOptions{})
	fmt.Println("sorted-greedy:", semimatch.Makespan(g, sorted))
	_, opt, _ := semimatch.ExactUnit(g, semimatch.ExactOptions{})
	fmt.Println("optimal:", opt)
	// Output:
	// sorted-greedy: 5
	// optimal: 1
}

// Portfolio runs all four hypergraph heuristics concurrently and returns
// the best result; with Refine it post-processes each with local search.
func ExamplePortfolio() {
	b := semimatch.NewHypergraphBuilder(3, 2)
	b.AddEdge(0, []int{0}, 5)
	b.AddEdge(0, []int{1}, 5)
	b.AddEdge(1, []int{0}, 2)
	b.AddEdge(2, []int{1}, 2)
	h, _ := b.Build()

	res, _ := semimatch.Portfolio(h, semimatch.PortfolioOptions{Refine: true})
	fmt.Println("makespan:", res.Makespan)
	// Output:
	// makespan: 7
}

// SolveBatch shards many instances across all cores: each one gets the
// portfolio, plus a branch-and-bound optimality proof when it is small
// enough, under a common context that can carry a deadline.
func ExampleSolveBatch() {
	var instances []*semimatch.Hypergraph
	for i := 0; i < 3; i++ {
		b := semimatch.NewHypergraphBuilder(2, 2)
		b.AddEdge(0, []int{0}, int64(4+i))
		b.AddEdge(0, []int{1}, int64(4+i))
		b.AddEdge(1, []int{0}, 2)
		h, _ := b.Build()
		instances = append(instances, h)
	}

	results, err := semimatch.SolveBatch(context.Background(), instances, semimatch.BatchOptions{Refine: true})
	if err != nil {
		panic(err)
	}
	for i, r := range results {
		fmt.Printf("instance %d: makespan %d, optimal %v\n", i, r.Makespan, r.Optimal)
	}
	// Output:
	// instance 0: makespan 4, optimal true
	// instance 1: makespan 5, optimal true
	// instance 2: makespan 6, optimal true
}
