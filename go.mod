module semimatch

go 1.21
