// Package semimatch is a Go implementation of the semi-matching algorithms
// for scheduling parallel tasks under resource constraints from:
//
//	Anne Benoit, Johannes Langguth, Bora Uçar.
//	"Semi-matching algorithms for scheduling parallel tasks under
//	resource constraints." IEEE IPDPSW 2013, pp. 1744–1753.
//
// # The problems
//
// SINGLEPROC: n sequential tasks, each restricted to a subset of p
// processors, minimize the maximum processor load (makespan). This is
// semi-matching in a bipartite graph; NP-complete with general weights,
// polynomial with unit weights.
//
// MULTIPROC: tasks are parallel — each task chooses one configuration,
// a set of processors that all spend w time on it. This is semi-matching
// in a bipartite hypergraph; NP-complete even with unit weights, and not
// approximable within 2−ε unless P=NP (Theorem 1).
//
// # What the package provides
//
//   - Exact SINGLEPROC-UNIT solver (deadline search over capacitated
//     matchings) and the Harvey–Ladner–Lovász–Tamir optimal semi-matching.
//   - The greedy heuristics basic/sorted/double-sorted/expected for
//     bipartite instances, and SGH/VGH/EGH/EVG for hypergraph instances,
//     plus the Eq. (1) lower bound.
//   - Branch-and-bound exact solvers for small NP-hard instances.
//   - The paper's random instance generators (HiLo, FewgManyg, two-stage
//     hypergraphs; unit/related/random weights) and worst-case families.
//   - A scheduling front end (named tasks and processors, Gantt charts)
//     and an experiment harness regenerating every table of the paper.
//
// # Quick start
//
//	in := semimatch.NewInstance("cpu0", "cpu1", "gpu")
//	in.AddTask("render",
//	    semimatch.Config{Procs: []int{0}, Time: 8},
//	    semimatch.Config{Procs: []int{0, 2}, Time: 3})
//	in.AddTask("encode", semimatch.Config{Procs: []int{1}, Time: 6})
//	s, err := semimatch.Solve(in, semimatch.ExpectedVectorGreedy)
//	// s.Makespan, s.Choice, s.Simulate() ...
//
// See examples/ for runnable programs and cmd/semibench for the
// experiment harness.
package semimatch
