// Package semimatch is a Go implementation of the semi-matching algorithms
// for scheduling parallel tasks under resource constraints from:
//
//	Anne Benoit, Johannes Langguth, Bora Uçar.
//	"Semi-matching algorithms for scheduling parallel tasks under
//	resource constraints." IEEE IPDPSW 2013, pp. 1744–1753.
//
// # The problems
//
// SINGLEPROC: n sequential tasks, each restricted to a subset of p
// processors, minimize the maximum processor load (makespan). This is
// semi-matching in a bipartite graph; NP-complete with general weights,
// polynomial with unit weights.
//
// MULTIPROC: tasks are parallel — each task chooses one configuration,
// a set of processors that all spend w time on it. This is semi-matching
// in a bipartite hypergraph; NP-complete even with unit weights, and not
// approximable within 2−ε unless P=NP (Theorem 1).
//
// # The unified solve API: Problem → Run → Report
//
// Both encodings solve through one class-generic surface. A Problem wraps
// either instance kind; Run answers it; the Report carries the schedule
// in the problem's own encoding, the makespan, the load-balance lower
// bound, the optimality status (StatusOptimal / StatusHeuristic /
// StatusTruncated), the producing solver's name, search statistics and
// wall time:
//
//	g := ...  // *semimatch.Graph (SINGLEPROC)
//	h := ...  // *semimatch.Hypergraph (MULTIPROC)
//
//	rg, err := semimatch.Run(ctx, semimatch.GraphProblem(g))
//	rh, err := semimatch.Run(ctx, semimatch.HypergraphProblem(h))
//	// rg.Makespan, rg.Status, rg.Solver, rh.LowerBound, ...
//
// Without options, Run applies the auto policy: a race over the class's
// heuristic lineup, then — when the instance is small enough — an exact
// branch-and-bound attempt that can prove optimality. Functional options
// tune one run:
//
//	rep, err := semimatch.Run(ctx, p,
//	    semimatch.WithAlgorithm("bnb-par"),      // any registry name or alias
//	    semimatch.WithDeadline(2*time.Second),   // anytime: truncates, never fails
//	    semimatch.WithWorkers(8),                // parallel solver pool
//	    semimatch.WithNodeBudget(50_000_000),    // branch-and-bound cap
//	    semimatch.WithRefine(),                  // MULTIPROC local search
//	)
//
// Run is an anytime solver: a deadline or node budget degrades the answer
// to the best schedule found so far (StatusTruncated) instead of
// discarding it, and an Observer watches the incumbent tighten while a
// long solve is still running:
//
//	rep, err := semimatch.Run(ctx, p,
//	    semimatch.WithAlgorithm("bnb-par"),
//	    semimatch.WithObserver(func(inc semimatch.Incumbent) {
//	        log.Printf("makespan %d after %v", inc.Makespan, inc.Elapsed)
//	    }))
//
// Observations are monotonically non-increasing in makespan, serialized,
// polled at solver checkpoints (never per search node), and closed by one
// Final observation that matches the returned Report. Every dispatch
// layer — SolveProblems batching, the solving service, the CLIs — routes
// through Run, so the observer and the anytime contract are available
// everywhere.
//
// # Batch solving
//
// SolveProblems shards many Problems — both classes freely mixed — across
// a GOMAXPROCS-wide worker pool with per-problem error isolation; each
// problem runs the auto policy:
//
//	outcomes, err := semimatch.SolveProblems(ctx, problems, semimatch.BatchOptions{
//	    Refine: true,                       // local search on every candidate
//	    InstanceTimeout: time.Second,       // per-problem budget
//	})
//	// outcomes[i].Report.Makespan, .Status, outcomes[i].Err ...
//
// SolveBatch is the deprecated hypergraph-only wrapper over the same
// runner.
//
// # Direct algorithm access
//
// The paper's algorithms remain addressable directly: the exact
// SINGLEPROC-UNIT solver (ExactUnit, deadline search over capacitated
// matchings; HarveyOptimal as an independent baseline), the greedy
// heuristics basic/sorted/double-sorted/expected (bipartite) and
// SGH/VGH/EGH/EVG (hypergraph), the Eq. (1) lower bound, branch-and-bound
// exact solvers for small NP-hard instances — sequential and
// work-stealing parallel — the paper's random instance generators and
// worst-case families, and a scheduling front end (named tasks and
// processors, Gantt charts). These are thin wrappers over the same
// machinery Run dispatches to.
//
// # Solver discovery
//
// Every algorithm is registered once in a central solver registry with
// its capability metadata — problem class (SINGLEPROC/MULTIPROC), kind
// (heuristic/exact/online) and cost class. WithAlgorithm, portfolio
// membership, the benchmark tables and the auto policy's exact-attempt
// stage all resolve through it:
//
//	for _, s := range semimatch.Solvers() {
//	    fmt.Println(s.Name, s.Class, s.Kind, s.Cost)
//	}
//	sol, err := semimatch.LookupSolver("evg")       // aliases work
//
// # Solving as a service
//
// Fingerprint(instance) hashes an instance's canonical form — the
// deterministic reordering that makes isomorphic instances byte-identical
// — so identical problems can be recognized across requests. NewService
// builds on it: a long-running, concurrency-safe solving service with a
// sharded LRU result cache keyed by (fingerprint, algorithm, budget
// class), single-flight deduplication and bounded-queue admission
// control. Both encodings flow through one request path onto Run:
//
//	svc := semimatch.NewService(semimatch.ServiceOptions{})
//	res, err := svc.Solve(ctx, h, "")     // auto policy; or any registry name
//	// res.Makespan, res.Assignment, res.Cached, res.Truncated ...
//
// Deadline-truncated solves return the best schedule found so far with
// Truncated set (and are kept out of the cache). cmd/semiserve wraps a
// Service in an HTTP server: POST /solve, GET /algorithms, GET /stats.
//
// # Proof-carrying results: certificates
//
// Every complete Run report carries a Certificate: the instance's
// canonical fingerprint, the schedule, the claimed makespan and lower
// bound, and an optimality witness naming the argument that closes the
// gap (a re-derivable lower bound — WitnessAverageLoad,
// WitnessMaxElement, WitnessPacking, WitnessMatching — or
// WitnessExhaustive for a finished branch-and-bound; WitnessNone for
// heuristic schedules).
// Verify re-derives everything from the instance alone and grades the
// claim into a TrustTier — TierVerified when the optimality argument is
// re-proven from first principles, TierAttested when feasibility and
// bounds check out but optimality rests on the search's exhaustion
// claim, TierHeuristic otherwise. A certificate that lies is rejected
// with an error, never silently downgraded:
//
//	rep, err := semimatch.Run(ctx, p, semimatch.WithVerify())
//	// rep.Certificate, rep.Trust; a failed verification strips
//	// StatusOptimal and reports ErrVerifyFailed alongside the report.
//
//	tier, err := semimatch.Verify(h, rep.Certificate) // independent check
//
// The Service builds its cache integrity on this contract: results must
// verify before entering any cache tier, and ServiceOptions.CacheDir
// adds a durable disk tier whose entries are re-verified on load — so a
// restarted service (or another replica sharing the directory) serves
// only answers it can prove, even for isomorphic restatements of an
// instance.
//
// # Telemetry: traces and search introspection
//
// WithTrace attaches a span tree to the Report — compile, root-bounds,
// greedy and search phases with their wall times and attributes (nodes,
// bounds, the winning solver) — and WithProgress streams periodic
// search-progress snapshots (nodes expanded, nodes/sec, incumbent,
// bound, optimality gap) from the exact engines:
//
//	rep, err := semimatch.Run(ctx, p,
//	    semimatch.WithTrace(),
//	    semimatch.WithProgress(func(s semimatch.SearchProgress) {
//	        log.Printf("%d nodes (%.0f/s), gap %.1f%%", s.Nodes, s.NodesPerSec, s.Gap*100)
//	    }))
//	rep.Trace.Format()               // human-readable span listing
//	rep.Trace.WriteNDJSON(os.Stdout) // one span per line
//
// Both are free when unused: spans no-op on nil receivers and progress
// is polled only at the engines' existing budget checkpoints, so
// instrumentation never changes node counts. cmd/semiserve layers
// service-level observability on top — Prometheus-text GET /metrics,
// live GET /debug/solves introspection, structured access logs, NDJSON
// request traces and a JSONL solve ledger (see cmd/semiserve and
// internal/telemetry).
//
// # Dynamic sessions: scheduling under change
//
// A one-shot Run answers a frozen instance; internal/session keeps a
// schedule alive while the instance changes. A session consumes
// arrive/depart/reweigh events, keeps the schedule feasible after each
// one with the paper's O(log p) online rule (internal/online), then
// re-runs the solve pipeline warm-started from the patched schedule —
// WithWarmStart seeds the branch-and-bound engines with it as the
// initial incumbent, so the search prunes against the previous answer
// instead of rediscovering it. The re-solved schedule is adopted only
// when it beats the patch on makespan + λ·Σ(moved task weight), so
// running tasks are not reshuffled for marginal gains.
//
// The surface is cmd/semiserve's session endpoints (POST /session,
// NDJSON events, a Server-Sent-Events incumbent stream), replayable
// offline as a script:
//
//	$ cat burst.ndjson
//	{"procs": 3, "lambda": 1}
//	{"op": "arrive", "task": {"id": "t1", "configs": [{"procs": [0], "weight": 4}, {"procs": [1], "weight": 4}]}}
//	{"op": "arrive", "task": {"id": "t2", "configs": [{"procs": [0], "weight": 6}]}}
//	{"op": "reweigh", "id": "t1", "weight": 9}
//	{"op": "depart", "id": "t2"}
//	$ semisolve -session burst.ndjson
//	#1    arrive  t1       tasks=1   makespan=4 (patched 4)
//	...
//	warm starts: 3 nodes vs 11 cold (72.7% saved)
//
// cmd/semiload's -session mode drives the same scripts against a live
// server and records per-event latency percentiles and the warm/cold
// node ratio into the BENCH_<n>.json trajectory.
//
// See examples/ for runnable programs and cmd/semibench for the
// experiment harness.
package semimatch
