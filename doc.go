// Package semimatch is a Go implementation of the semi-matching algorithms
// for scheduling parallel tasks under resource constraints from:
//
//	Anne Benoit, Johannes Langguth, Bora Uçar.
//	"Semi-matching algorithms for scheduling parallel tasks under
//	resource constraints." IEEE IPDPSW 2013, pp. 1744–1753.
//
// # The problems
//
// SINGLEPROC: n sequential tasks, each restricted to a subset of p
// processors, minimize the maximum processor load (makespan). This is
// semi-matching in a bipartite graph; NP-complete with general weights,
// polynomial with unit weights.
//
// MULTIPROC: tasks are parallel — each task chooses one configuration,
// a set of processors that all spend w time on it. This is semi-matching
// in a bipartite hypergraph; NP-complete even with unit weights, and not
// approximable within 2−ε unless P=NP (Theorem 1).
//
// # What the package provides
//
//   - Exact SINGLEPROC-UNIT solver (deadline search over capacitated
//     matchings) and the Harvey–Ladner–Lovász–Tamir optimal semi-matching.
//   - The greedy heuristics basic/sorted/double-sorted/expected for
//     bipartite instances, and SGH/VGH/EGH/EVG for hypergraph instances,
//     plus the Eq. (1) lower bound.
//   - Branch-and-bound exact solvers for small NP-hard instances,
//     sequential and parallel: the work-stealing engine (BnB-SP-Par,
//     BnB-MP-Par) shares an atomic incumbent across Workers workers and
//     adds cheapest-cost ordering, a max-element bound and processor
//     symmetry breaking.
//   - The paper's random instance generators (HiLo, FewgManyg, two-stage
//     hypergraphs; unit/related/random weights) and worst-case families.
//   - A scheduling front end (named tasks and processors, Gantt charts)
//     and an experiment harness regenerating every table of the paper.
//   - A context-aware batch-solving layer that shards many instances
//     across all cores.
//   - A capability-aware solver registry: every algorithm is one
//     self-describing catalog entry, and Solvers() / LookupSolver()
//     expose the catalog for discovery.
//
// # Quick start
//
//	in := semimatch.NewInstance("cpu0", "cpu1", "gpu")
//	in.AddTask("render",
//	    semimatch.Config{Procs: []int{0}, Time: 8},
//	    semimatch.Config{Procs: []int{0, 2}, Time: 3})
//	in.AddTask("encode", semimatch.Config{Procs: []int{1}, Time: 6})
//	s, err := semimatch.Solve(in, semimatch.ExpectedVectorGreedy)
//	// s.Makespan, s.Choice, s.Simulate() ...
//
// # Cancellation, deadlines, batching
//
// The long-running solvers have context-aware entry points. The
// branch-and-bound searches (SolveSingleProcCtx, SolveMultiProcCtx) poll
// the context alongside their node budget and, when it is cancelled,
// return the best schedule found so far with an error wrapping
// ErrCancelled. PortfolioCtx races the heuristics against a deadline and
// judges whichever candidates finished in time; RefineCtx winds local
// search down at the next poll, keeping its (never worse) intermediate
// result.
//
// SolveBatch builds on these to solve many instances at once on a
// GOMAXPROCS-wide worker pool with per-instance error isolation:
//
//	results, err := semimatch.SolveBatch(ctx, instances, semimatch.BatchOptions{
//	    Refine: true,                       // local search on every candidate
//	    InstanceTimeout: time.Second,       // per-instance budget
//	})
//	// results[i].Makespan, results[i].Optimal, results[i].Err ...
//
// Each instance runs the portfolio first, then — when small enough — an
// exact branch-and-bound attempt (the parallel engine, worker-budgeted
// against the pool) that can prove optimality, falling back to the best
// schedule found when a budget expires. Makespans are deterministic in
// the worker count.
//
// # Solver discovery
//
// Every algorithm is registered once in a central solver registry with
// its capability metadata — problem class (SINGLEPROC/MULTIPROC), kind
// (heuristic/exact/online) and cost class. Portfolio membership, the
// benchmark tables, Solve's Algorithm enum and SolveBatch's exact-attempt
// policy all resolve through it:
//
//	for _, s := range semimatch.Solvers() {
//	    fmt.Println(s.Name, s.Class, s.Kind, s.Cost)
//	}
//	sol, err := semimatch.LookupSolver("evg")       // aliases work
//	a, err := sol.SolveHyper(ctx, h, semimatch.SolverOptions{})
//
// # Solving as a service
//
// Fingerprint(instance) hashes an instance's canonical form — the
// deterministic reordering that makes isomorphic instances (same
// structure under configuration/processor reordering) byte-identical —
// so identical problems can be recognized across requests. NewService
// builds on it: a long-running, concurrency-safe solving service with a
// sharded LRU result cache keyed by (fingerprint, algorithm, budget
// class), single-flight deduplication (N concurrent identical requests
// trigger one solve), and bounded-queue admission control that fails
// fast with ErrServiceOverloaded instead of queueing unboundedly:
//
//	svc := semimatch.NewService(semimatch.ServiceOptions{})
//	res, err := svc.Solve(ctx, h, "")     // auto policy; or any registry name
//	// res.Makespan, res.Assignment, res.Cached, res.Truncated ...
//
// Deadline-truncated solves return the best schedule found so far with
// Truncated set (and are kept out of the cache). cmd/semiserve wraps a
// Service in an HTTP server: POST /solve, GET /algorithms, GET /stats.
//
// See examples/ for runnable programs and cmd/semibench for the
// experiment harness.
package semimatch
