// Package-level benchmarks: one testing.B target per table/figure of the
// paper's evaluation, so `go test -bench=.` regenerates every experiment
// at a CI-friendly scale. cmd/semibench runs the full-size grids and
// prints the tables themselves; `semibench -bench` records the
// exact-solver perf trajectory as BENCH.json. EXPERIMENTS.md holds the
// recorded results and the methodology for regressing against them.
package semimatch_test

import (
	"context"
	"fmt"
	"testing"

	"semimatch"
	"semimatch/internal/bench"
	"semimatch/internal/core"
	"semimatch/internal/gen"
)

// benchOpts keeps -bench runs to one representative size with one seed;
// the full grid is cmd/semibench's job.
var benchOpts = bench.Options{
	Seeds:         1,
	SizesOverride: []bench.SizeRow{{Label: "5-1", N: 1280, P: 256}},
}

// BenchmarkTable1 regenerates the Table I statistics (instance
// generation + stat collection for all four families).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunHyperTable(context.Background(), gen.Unit, benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		_ = bench.FormatHyperStats(res)
	}
}

// BenchmarkTable2 regenerates Table II (MULTIPROC-UNIT quality vs LB).
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunHyperTable(context.Background(), gen.Unit, benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3 regenerates Table III (related weights).
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunHyperTable(context.Background(), gen.Related, benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable8 regenerates the TR's random-weights table.
func BenchmarkTable8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunHyperTable(context.Background(), gen.Random, benchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSingleProcTables regenerates one SINGLEPROC quality table
// (Sec. V-B) per generator family.
func BenchmarkSingleProcTables(b *testing.B) {
	for _, generator := range []gen.Generator{gen.FewgManyg, gen.HiLo} {
		b.Run(generator.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := bench.RunSingleProc(context.Background(), generator, 10, 32, benchOpts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig3Chain measures the heuristics on the Fig. 3 worst-case
// chain (greedy k vs optimal 1) across sizes.
func BenchmarkFig3Chain(b *testing.B) {
	for _, k := range []int{8, 12, 16} {
		g := semimatch.Chain(k)
		b.Run(fmt.Sprintf("k=%d/sorted", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				semimatch.SortedGreedy(g, semimatch.GreedyOptions{})
			}
		})
		b.Run(fmt.Sprintf("k=%d/exact", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := semimatch.ExactUnit(g, semimatch.ExactOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Ablation benches (design choices called out in DESIGN.md §4) ---

func ablationHyper(b *testing.B, weights gen.WeightScheme) *semimatch.Hypergraph {
	b.Helper()
	h, err := gen.Hypergraph(gen.HyperParams{
		Gen: gen.FewgManyg, N: 1280, P: 256, Dv: 5, Dh: 10, G: 32, Weights: weights,
	}, 1)
	if err != nil {
		b.Fatal(err)
	}
	return h
}

// BenchmarkAblationVectorFastVsNaive times the incrementally sorted load
// list (the improvement the paper describes but did not implement) against
// the naive copy-and-sort variant the paper timed.
func BenchmarkAblationVectorFastVsNaive(b *testing.B) {
	h := ablationHyper(b, gen.Related)
	b.Run("VGH/fast", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.VectorGreedyHyp(h, core.HyperOptions{})
		}
	})
	b.Run("VGH/naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.VectorGreedyHyp(h, core.HyperOptions{Naive: true})
		}
	})
	b.Run("EVG/fast", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.ExpectedVectorGreedyHyp(h, core.HyperOptions{})
		}
	})
	b.Run("EVG/naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.ExpectedVectorGreedyHyp(h, core.HyperOptions{Naive: true})
		}
	})
}

// BenchmarkAblationExactSearch times the exact SINGLEPROC-UNIT algorithm
// across search strategies and feasibility testers: the paper's literal
// incremental+replication algorithm vs the bisection+capacitated variant.
func BenchmarkAblationExactSearch(b *testing.B) {
	g, err := gen.Bipartite(gen.FewgManyg, 5120, 256, 32, 10, 1)
	if err != nil {
		b.Fatal(err)
	}
	cases := []struct {
		name string
		opts core.ExactOptions
	}{
		{"incremental+replicate(paper)", core.ExactOptions{Strategy: core.SearchIncremental, Tester: core.TestReplicate}},
		{"incremental+capacitated", core.ExactOptions{Strategy: core.SearchIncremental, Tester: core.TestCapacitated}},
		{"bisection+replicate", core.ExactOptions{Strategy: core.SearchBisection, Tester: core.TestReplicate}},
		{"bisection+capacitated", core.ExactOptions{Strategy: core.SearchBisection, Tester: core.TestCapacitated}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := core.ExactUnit(g, c.opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationAfterLoad times (and lets one inspect) the paper's
// pre-add selection rule vs the after-load rule on weighted instances.
func BenchmarkAblationAfterLoad(b *testing.B) {
	h := ablationHyper(b, gen.Related)
	b.Run("SGH/paper-rule", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.SortedGreedyHyp(h, core.HyperOptions{})
		}
	})
	b.Run("SGH/after-load", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.SortedGreedyHyp(h, core.HyperOptions{AfterLoad: true})
		}
	})
}
